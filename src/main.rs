//! `replipred` — command-line scalability prediction.
//!
//! ```text
//! replipred predict  --workload tpcw-shopping --design mm --replicas 16
//! replipred sweep    --workload tpcw-shopping --design all --replicas 8 --json
//! replipred simulate --workload tpcw-shopping --design sm --replicas 8
//! replipred phases   --workload rubis-bidding --schedule "crash@30=1,join@60=1"
//! replipred validate --workload all --replicas 4 --jobs 8
//! replipred plan     --workload tpcw-ordering --tps 250 --max-response-ms 400
//! replipred profile  --workload rubis-bidding --seed 7
//! ```
//!
//! Every experiment subcommand is a thin front end over
//! [`replipred::scenario::Scenario`]: designs are addressed through the
//! registry (`--design standalone|mm|sm|all`), and `--json` emits the
//! scenario's serialized report. The flags shared by every subcommand
//! (`--replicas`, `--clients`, `--seed`, `--seeds`, `--jobs`, `--json`,
//! `--design`, `--schedule`, `--phase-window`) are parsed once into
//! [`RunOpts`] and applied uniformly. `validate` drives the
//! [`replipred::validate::ValidationGrid`] — the prediction-vs-simulation
//! error grid over workloads × designs × replica points.
//!
//! `--workload` accepts the five published profiles
//! (`tpcw-{browsing,shopping,ordering}`, `rubis-{browsing,bidding}`), a
//! synthetic-family description (`synth:<preset>` or `synth:k=v,...`, see
//! [`replipred::workload::synth`]) or `@path/to/profile.json` (a
//! serialized `WorkloadProfile`, as produced by `profile --json`;
//! prediction only).
//!
//! `--schedule` attaches a time-phased [`Schedule`] to simulated runs —
//! replica crashes and rejoins, certifier outages, client-population
//! ramps — and the resulting reports carry a windowed
//! [`TransientReport`]; `phases` is the dedicated front end for such
//! runs.

use std::process::ExitCode;

use replipred::model::planner::{plan_designs, Plan, Slo};
use replipred::model::{Design, SystemConfig, WorkloadProfile};
use replipred::profiler::Profiler;
use replipred::repl::{DurabilityConfig, Schedule, TransientReport};
use replipred::scenario::{parse_workload, ReplicationSummary, Scenario, ScenarioReport};
use replipred::validate::{doubling_points, split_workloads, ValidationGrid, ValidationReport};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  replipred predict  --workload <w> [--design <d>] [--replicas N] [--clients C] [--json]
  replipred sweep    --workload <w> [--design <d>] [--replicas N] [--clients C] [--simulate]
                     [--profile-live] [--seed S] [--seeds K] [--jobs J] [--schedule <s>] [--json]
  replipred simulate --workload <w> [--design <d>] [--replicas N] [--seed S] [--seeds K]
                     [--jobs J] [--schedule <s>] [--json]
  replipred phases   [--workload <w>] [--design <d>] [--replicas N] [--schedule <s>]
                     [--recovery] [--phase-window W] [--seed S] [--seeds K] [--jobs J] [--json]
  replipred validate [--workload <w,...>|all] [--design <d>] [--replicas N] [--seed S]
                     [--seeds K] [--jobs J] [--json]
  replipred plan     --workload <w> --tps X [--max-response-ms R] [--max-abort-pct A]
                     [--design <d>] [--clients C] [--seed S] [--json]
  replipred profile  --workload <w> [--seed S] [--json]
  replipred recover  [--commits N] [--group-commit G] [--truncate-at BYTES]
                     [--dir PATH] [--seed S] [--json]

designs:   standalone mm sm, a comma list of those, or all
workloads: tpcw-browsing tpcw-shopping tpcw-ordering rubis-browsing rubis-bidding,
           a synthetic description synth:<preset> or synth:k=v,... (presets:
           read-only write-heavy long-txn hot-spot ycsb-a ycsb-b; knobs e.g.
           synth:pw=0.4,reads=8,hot=0.5,hot-rows=256),
           or @profile.json (predict/sweep/plan only)
--jobs J:  worker threads for simulation cells (default: all cores; the
           report is identical for every J)
--seeds K: seed replications per simulated point, aggregated to mean +- CI
--schedule s: comma list of time-phased events `name@time[=arg]` applied to
           simulated runs: crash@T=i join@T=i cert-down@T cert-up@T
           clients@T=factor flash-crowd@T=FACTORxDURATION phase@T=name, plus
           window=W slo=SECONDS recovery=FRACTION settings, e.g.
           \"crash@30=1,flash-crowd@45=2x15,join@60=1,window=5\"
--phase-window W: transient window width in seconds (enables transient
           reporting even with an event-free schedule)
--durable: enable redo-log durability on simulated runs — commits pay the
           amortized group-commit disk term `fsync / group-commit`, crashed
           replicas rejoin by recovering checkpoint + WAL; tune with
           --group-commit G (default 8), --fsync-ms F (default 2),
           --log-retention R (writesets kept past the slowest replica;
           0 = unbounded, small values force checkpoint state transfers)
--profile-live (sweep): measure the profile via the Section-4 standalone
           profiling pipeline instead of the published tables
phases:    simulate one time-phased scenario and print its windowed
           transient report; defaults to rubis-bidding x mm x 4 replicas
           under a crash + flash-crowd + rejoin demo schedule; --recovery
           switches to the durable recovery preset (tpcw-shopping x sm,
           crash @30 + rejoin @60 with --durable on): the rejoin window
           shows catch-up lag as WAL replay cost
recover:   scripted durability round trip on one sidb engine: run a
           deterministic update workload, persist checkpoint + crc-framed
           WAL to --dir (default: a temp dir), cold-start recover from the
           files alone, and verify the rebuilt database byte-for-byte;
           --truncate-at cuts the WAL mid-frame to exercise torn-tail
           truncation
validate:  run the prediction-vs-simulation error grid; --workload takes a
           comma list or `all` (5 published mixes + 4 synth presets),
           --replicas N sweeps the doubling points 1,2,4,..,N";

/// Parses `--flag value` pairs after the subcommand, rejecting repeated
/// flags and flag names standing in for values (`--replicas --seed`).
fn flag(args: &[String], name: &str) -> Result<Option<String>, String> {
    let mut positions = args.iter().enumerate().filter(|(_, a)| *a == name);
    let first = positions.next();
    if positions.next().is_some() {
        return Err(format!("flag {name} given more than once"));
    }
    let Some((i, _)) = first else {
        return Ok(None);
    };
    match args.get(i + 1) {
        Some(v) if v.starts_with("--") => Err(format!(
            "missing value for {name} (found flag `{v}` instead)"
        )),
        Some(v) => Ok(Some(v.clone())),
        None => Err(format!("missing value for {name}")),
    }
}

fn parse_flag<T: std::str::FromStr>(args: &[String], name: &str) -> Result<Option<T>, String> {
    match flag(args, name)? {
        None => Ok(None),
        Some(v) => v
            .parse()
            .map(Some)
            .map_err(|_| format!("invalid value for {name}: {v}")),
    }
}

/// Parses a count flag that must be a positive integer (`--jobs`,
/// `--seeds`, `--replicas`): rejects non-numeric values and zero.
fn parse_count(args: &[String], name: &str) -> Result<Option<usize>, String> {
    match parse_flag::<usize>(args, name)? {
        Some(0) => Err(format!("{name} must be at least 1")),
        other => Ok(other),
    }
}

/// True when the boolean flag is present (it takes no value).
fn has_flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

/// `--design`: one key, a comma list, or `all`; `None` when absent (each
/// subcommand supplies its own default set).
fn parse_designs(args: &[String]) -> Result<Option<Vec<Design>>, String> {
    match flag(args, "--design")? {
        None => Ok(None),
        Some(v) if v == "all" => Ok(Some(Design::ALL.to_vec())),
        Some(v) => {
            let mut designs = Vec::new();
            for k in v.split(',') {
                let d = Design::parse(k).ok_or_else(|| {
                    format!("unknown design `{k}` (use standalone, mm, sm or all)")
                })?;
                if designs.contains(&d) {
                    return Err(format!("duplicate design `{k}`"));
                }
                designs.push(d);
            }
            Ok(Some(designs))
        }
    }
}

/// The flags every experiment subcommand shares, parsed once per
/// invocation and applied uniformly: the design set, replica point(s),
/// client population, seeding, parallelism, output format, and the
/// optional time-phased [`Schedule`].
struct RunOpts {
    designs: Option<Vec<Design>>,
    replicas: Option<usize>,
    clients: Option<usize>,
    seed: Option<u64>,
    seeds: Option<usize>,
    jobs: usize,
    json: bool,
    schedule: Option<Schedule>,
    durability: Option<DurabilityConfig>,
}

/// `--durable` plus its tuning flags (`--group-commit`, `--fsync-ms`,
/// `--log-retention`). The tuning flags require `--durable`; without it
/// the simulators run exactly as pre-durability builds.
fn parse_durability(args: &[String]) -> Result<Option<DurabilityConfig>, String> {
    let durable = has_flag(args, "--durable");
    let group = parse_count(args, "--group-commit")?;
    let fsync_ms: Option<f64> = parse_flag(args, "--fsync-ms")?;
    let retention: Option<u64> = parse_flag(args, "--log-retention")?;
    if !durable {
        if group.is_some() || fsync_ms.is_some() || retention.is_some() {
            return Err("--group-commit/--fsync-ms/--log-retention require --durable".to_string());
        }
        return Ok(None);
    }
    let mut d = DurabilityConfig {
        enabled: true,
        ..DurabilityConfig::default()
    };
    if let Some(g) = group {
        d.group_commit = g;
    }
    if let Some(ms) = fsync_ms {
        if !ms.is_finite() || ms < 0.0 {
            return Err(format!("--fsync-ms must be non-negative (got {ms})"));
        }
        d.fsync_disk = ms / 1e3;
    }
    if let Some(r) = retention {
        d.log_retention = r;
    }
    Ok(Some(d))
}

impl RunOpts {
    #[cfg(test)]
    fn parse(args: &[String]) -> Result<Self, String> {
        Self::parse_for("", args)
    }

    /// `parse` with the subcommand name: `recover` owns `--group-commit`
    /// outright (its WAL is the experiment, not a simulator knob), every
    /// other subcommand requires `--durable` alongside the tuning flags.
    fn parse_for(cmd: &str, args: &[String]) -> Result<Self, String> {
        let mut schedule = match flag(args, "--schedule")? {
            None => None,
            Some(v) => Some(Schedule::parse(&v).map_err(|e| e.to_string())?),
        };
        if let Some(w) = parse_flag::<f64>(args, "--phase-window")? {
            if !w.is_finite() || w <= 0.0 {
                return Err(format!("--phase-window must be positive (got {w})"));
            }
            schedule = Some(schedule.unwrap_or_default().window(w));
        }
        Ok(RunOpts {
            designs: parse_designs(args)?,
            replicas: parse_count(args, "--replicas")?,
            clients: parse_flag(args, "--clients")?,
            seed: parse_flag(args, "--seed")?,
            seeds: parse_count(args, "--seeds")?,
            jobs: parse_count(args, "--jobs")?.unwrap_or_else(replipred_sim::pool::default_jobs),
            json: has_flag(args, "--json"),
            schedule,
            durability: if cmd == "recover" {
                None
            } else {
                parse_durability(args)?
            },
        })
    }

    /// The design set, or `default` when `--design` was absent.
    fn designs(&self, default: &[Design]) -> Vec<Design> {
        self.designs.clone().unwrap_or_else(|| default.to_vec())
    }

    /// Applies the shared options with `--replicas` as the `1..=N` curve
    /// (the predict/sweep shape).
    fn curve(&self, scenario: Scenario, default_replicas: usize) -> Scenario {
        self.common(scenario.replicas(1..=self.replicas.unwrap_or(default_replicas)))
    }

    /// Applies the shared options with `--replicas` as a single point
    /// (the simulate/phases shape).
    fn point(&self, scenario: Scenario, default_replicas: usize) -> Scenario {
        self.common(scenario.replicas([self.replicas.unwrap_or(default_replicas)]))
    }

    fn common(&self, mut scenario: Scenario) -> Scenario {
        if let Some(clients) = self.clients {
            scenario = scenario.clients(clients);
        }
        if let Some(seed) = self.seed {
            scenario = scenario.seed(seed);
        }
        if let Some(seeds) = self.seeds {
            scenario = scenario.seeds(seeds);
        }
        scenario = scenario.jobs(self.jobs);
        if let Some(schedule) = &self.schedule {
            scenario = scenario.schedule(schedule.clone());
        }
        if let Some(durability) = &self.durability {
            scenario = scenario.durability(durability.clone());
        }
        scenario
    }
}

/// Reads and validates a serialized `WorkloadProfile` (the `@file` path).
fn read_profile_file(path: &str) -> Result<WorkloadProfile, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let profile: WorkloadProfile =
        serde_json::from_str(&text).map_err(|e| format!("bad profile JSON: {e}"))?;
    profile.validate().map_err(|e| e.to_string())?;
    Ok(profile)
}

/// Builds the scenario for `--workload`: a registered name (published or
/// `synth:`) or `@file`.
fn workload_scenario(args: &[String]) -> Result<Scenario, String> {
    let w = flag(args, "--workload")?.ok_or("missing --workload")?;
    match w.strip_prefix('@') {
        Some(path) => Ok(Scenario::from_profile(read_profile_file(path)?)),
        None => Scenario::workload(&w).map_err(|e| e.to_string()),
    }
}

/// The profile alone (for `plan`, which drives the planner directly):
/// `@file`, a published profile, or a `synth:` description measured live
/// through the Section-4 pipeline (seeded by `--seed`, default 2009).
fn load_profile(args: &[String], opts: &RunOpts) -> Result<WorkloadProfile, String> {
    let w = flag(args, "--workload")?.ok_or("missing --workload")?;
    match w.strip_prefix('@') {
        Some(path) => read_profile_file(path),
        None => {
            if let Some(profile) = replipred::scenario::published_profile(&w) {
                return Ok(profile);
            }
            let spec = parse_workload(&w).map_err(|e| e.to_string())?;
            Ok(Profiler::new(spec)
                .seed(opts.seed.unwrap_or(2009))
                .profile()
                .profile)
        }
    }
}

fn default_clients(profile: &WorkloadProfile) -> usize {
    parse_workload(&profile.name)
        .map(|s| s.clients_per_replica)
        .unwrap_or(50)
}

fn run(args: &[String]) -> Result<(), String> {
    let cmd = args.first().ok_or("missing subcommand")?.as_str();
    let rest = &args[1..];
    if matches!(cmd, "--help" | "-h" | "help") {
        println!("{USAGE}");
        return Ok(());
    }
    let opts = RunOpts::parse_for(cmd, rest)?;
    match cmd {
        "predict" => predict(rest, &opts),
        "sweep" => sweep(rest, &opts),
        "simulate" => simulate(rest, &opts),
        "phases" => phases(rest, &opts),
        "validate" => validate_cmd(rest, &opts),
        "plan" => plan_cmd(rest, &opts),
        "profile" => profile_cmd(rest, &opts),
        "recover" => recover_cmd(rest, &opts),
        other => Err(format!("unknown subcommand `{other}`")),
    }
}

fn print_json<T: serde::Serialize>(value: &T) {
    println!(
        "{}",
        serde_json::to_string_pretty(value).expect("report serializes")
    );
}

/// One printed row of a curve table: `(N, tput, resp, abort, bottleneck,
/// utilization)`.
type CurveRow<'a> = (usize, f64, f64, f64, &'a str, f64);

fn print_table<'a>(title: String, rows: impl Iterator<Item = CurveRow<'a>>) {
    println!("# {title}");
    println!(
        "{:>3} {:>12} {:>12} {:>10} {:>18}",
        "N", "tput (tps)", "resp (ms)", "abort %", "bottleneck"
    );
    for (n, tput, resp, abort, bottleneck, util) in rows {
        println!(
            "{n:>3} {tput:>12.1} {:>12.1} {:>10.3} {bottleneck:>12} ({:.0}%)",
            resp * 1e3,
            abort * 1e2,
            util * 1e2
        );
    }
}

fn emit(report: &ScenarioReport, json: bool) {
    if json {
        print_json(report);
        return;
    }
    for d in &report.designs {
        if let Some(curve) = &d.predicted {
            print_table(
                format!("design {} (model)", d.design),
                curve.points.iter().map(|p| {
                    (
                        p.replicas,
                        p.throughput_tps,
                        p.response_time,
                        p.abort_rate,
                        p.bottleneck.as_str(),
                        p.bottleneck_utilization,
                    )
                }),
            );
        }
        if !d.measured.is_empty() {
            print_table(
                format!("design {} (simulated)", d.design),
                d.measured.iter().map(|r| {
                    (
                        r.replicas,
                        r.throughput_tps,
                        r.response_time,
                        r.abort_rate,
                        r.bottleneck.as_str(),
                        r.max_utilization,
                    )
                }),
            );
        }
        if !d.replicated.is_empty() {
            print_ci_table(
                format!(
                    "design {} (simulated, {} seeds, mean +- 95% CI)",
                    d.design, report.seeds
                ),
                &d.replicated,
            );
        }
        for r in &d.measured {
            if let Some(t) = &r.transient {
                print_transient(format!("design {} N={} transient", d.design, r.replicas), t);
            }
        }
    }
}

fn print_ci_table(title: String, rows: &[ReplicationSummary]) {
    println!("# {title}");
    println!(
        "{:>3} {:>12} {:>10} {:>12} {:>10} {:>9} {:>9}",
        "N", "tput (tps)", "+-", "resp (ms)", "+-", "abort %", "+-"
    );
    for r in rows {
        println!(
            "{:>3} {:>12.1} {:>10.1} {:>12.1} {:>10.1} {:>9.3} {:>9.3}",
            r.replicas,
            r.throughput_tps,
            r.throughput_ci95,
            r.response_time * 1e3,
            r.response_ci95 * 1e3,
            r.abort_rate * 1e2,
            r.abort_ci95 * 1e2
        );
    }
}

/// Prints one run's transient section: the windowed time series, the
/// per-phase aggregates, the applied events, and the headline
/// recovery/SLO/abort metrics.
fn print_transient(title: String, t: &TransientReport) {
    println!("# {title} ({:.0} s windows)", t.window);
    println!(
        "{:>7} {:>7} {:>12} {:>12} {:>10}",
        "from", "to", "tput (tps)", "resp (ms)", "abort %"
    );
    for w in &t.windows {
        println!(
            "{:>7.0} {:>7.0} {:>12.1} {:>12.1} {:>10.3}",
            w.start,
            w.end,
            w.throughput_tps,
            w.response_time * 1e3,
            w.abort_rate * 1e2
        );
    }
    if !t.phases.is_empty() {
        println!("# phases");
        for p in &t.phases {
            println!(
                "{:>20} [{:>5.0} s, {:>5.0} s) {:>10.1} tps {:>9.1} ms {:>8.3}%",
                p.name,
                p.start,
                p.end,
                p.throughput_tps,
                p.response_time * 1e3,
                p.abort_rate * 1e2
            );
        }
    }
    for e in &t.events {
        println!("event @ {:>6.1} s   {}", e.at, e.event);
    }
    println!(
        "baseline        {:.1} tps (pre-event windows)",
        t.baseline_tps
    );
    match t.recovery_time {
        Some(r) => println!("recovery        {r:.1} s after the first event"),
        None => println!("recovery        - (no event, or not recovered in-run)"),
    }
    println!(
        "slo violation   {:.1} s above {:.0} ms",
        t.slo_violation_secs,
        t.slo_response * 1e3
    );
    println!("peak abort      {:.3}%", t.peak_abort_rate * 1e2);
}

fn predict(args: &[String], opts: &RunOpts) -> Result<(), String> {
    let scenario = opts
        .curve(workload_scenario(args)?, 16)
        .designs(opts.designs(&[Design::MultiMaster]));
    let report = scenario.run().map_err(|e| e.to_string())?;
    emit(&report, opts.json);
    Ok(())
}

fn sweep(args: &[String], opts: &RunOpts) -> Result<(), String> {
    let base = if has_flag(args, "--profile-live") {
        // Measure the profile on the standalone simulation (the paper's
        // Section-4 pipeline) instead of using the published tables —
        // exercises workload → sidb → profiler end to end.
        let w = flag(args, "--workload")?.ok_or("missing --workload")?;
        let spec = parse_workload(&w).map_err(|e| {
            format!("--profile-live needs a published or synth: workload name: {e}")
        })?;
        Scenario::from_spec(spec)
    } else {
        workload_scenario(args)?
    };
    if opts.seeds.is_some() && !has_flag(args, "--simulate") {
        return Err(
            "--seeds requires --simulate (prediction is deterministic, so seed \
             replication only applies to simulated runs)"
                .into(),
        );
    }
    let mut scenario = opts.curve(base, 8).designs(opts.designs(&Design::ALL));
    if has_flag(args, "--simulate") {
        scenario = scenario.simulate(true);
    }
    let report = scenario.run().map_err(|e| e.to_string())?;
    emit(&report, opts.json);
    Ok(())
}

fn simulate(args: &[String], opts: &RunOpts) -> Result<(), String> {
    let scenario = opts
        .point(workload_scenario(args)?, 4)
        .designs(opts.designs(&[Design::MultiMaster]))
        .predict(false)
        .simulate(true);
    let report = scenario.run().map_err(|e| e.to_string())?;
    if opts.json {
        print_json(&report);
        return Ok(());
    }
    for d in &report.designs {
        for r in &d.measured {
            println!("design          {}", d.design);
            println!("workload        {}", r.workload);
            println!("replicas        {} ({} clients)", r.replicas, r.clients);
            println!("throughput      {:.1} tps", r.throughput_tps);
            println!("response        {:.1} ms", r.response_time * 1e3);
            println!("abort rate      {:.3}%", r.abort_rate * 1e2);
            println!(
                "bottleneck      {} ({:.0}%)",
                r.bottleneck,
                r.max_utilization * 1e2
            );
            println!(
                "writesets       {} applied, {:.0} B mean",
                r.writesets_applied, r.mean_writeset_bytes
            );
            if let Some(t) = &r.transient {
                print_transient("transient".to_string(), t);
            }
        }
    }
    Ok(())
}

/// The demo schedule `phases` runs when `--schedule` is absent: crash a
/// replica mid-run, pile on a flash crowd while degraded, rejoin the
/// replica, and report 5-second windows.
fn default_phases_schedule() -> Schedule {
    Schedule::new()
        .crash(30.0, 1)
        .flash_crowd(45.0, 2.0, 15.0)
        .join(60.0, 1)
        .window(5.0)
}

/// The `phases --recovery` preset: crash a replica, let it sit out half a
/// minute of commits, rejoin it — with durability on, so the rejoin
/// window measures checkpoint-load + WAL-replay catch-up instead of a
/// free in-memory resume.
fn recovery_phases_schedule() -> Schedule {
    Schedule::new().crash(30.0, 1).join(60.0, 1).window(5.0)
}

fn phases(args: &[String], opts: &RunOpts) -> Result<(), String> {
    let recovery = has_flag(args, "--recovery");
    let default_workload = if recovery {
        "tpcw-shopping"
    } else {
        "rubis-bidding"
    };
    let base = match flag(args, "--workload")? {
        Some(_) => workload_scenario(args)?,
        None => Scenario::workload(default_workload).map_err(|e| e.to_string())?,
    };
    let default_design = if recovery {
        // Durable rejoin-by-recovery lives in the single-master design.
        Design::SingleMaster
    } else {
        Design::MultiMaster
    };
    let mut scenario = opts
        .point(base, 4)
        .designs(opts.designs(&[default_design]))
        .predict(false)
        .simulate(true);
    if opts.schedule.is_none() {
        scenario = scenario.schedule(if recovery {
            recovery_phases_schedule()
        } else {
            default_phases_schedule()
        });
    }
    if recovery && opts.durability.is_none() {
        scenario = scenario.durability(DurabilityConfig {
            enabled: true,
            ..DurabilityConfig::default()
        });
    }
    let report = scenario.run().map_err(|e| e.to_string())?;
    if opts.json {
        print_json(&report);
        return Ok(());
    }
    for d in &report.designs {
        for r in &d.measured {
            println!("design          {}", d.design);
            println!("workload        {}", r.workload);
            println!("replicas        {} ({} clients)", r.replicas, r.clients);
            println!(
                "throughput      {:.1} tps (whole-run mean)",
                r.throughput_tps
            );
            match &r.transient {
                Some(t) => print_transient("transient".to_string(), t),
                None => println!("(schedule disabled: no transient section)"),
            }
        }
    }
    Ok(())
}

fn validate_cmd(args: &[String], opts: &RunOpts) -> Result<(), String> {
    let mut grid = ValidationGrid::new().designs(opts.designs(&Design::ALL));
    match flag(args, "--workload")? {
        None => {}
        Some(v) if v == "all" => {}
        Some(v) => {
            let workloads = split_workloads(&v);
            if workloads.is_empty() {
                return Err("--workload lists no workloads".into());
            }
            grid = grid.workloads(workloads);
        }
    }
    if let Some(max) = opts.replicas {
        grid = grid.replicas(doubling_points(max));
    }
    if let Some(seed) = opts.seed {
        grid = grid.seed(seed);
    }
    if let Some(seeds) = opts.seeds {
        grid = grid.seeds(seeds);
    }
    grid = grid.jobs(opts.jobs);
    let report = grid.run().map_err(|e| e.to_string())?;
    if opts.json {
        print_json(&report);
        return Ok(());
    }
    print_validation(&report);
    Ok(())
}

fn print_validation(report: &ValidationReport) {
    println!(
        "# validate: prediction vs simulation (seed {}, {} seed replication{})",
        report.seed,
        report.seeds,
        if report.seeds == 1 { "" } else { "s" }
    );
    for w in &report.workloads {
        println!("\n# {} (C = {})", w.workload, w.clients_per_replica);
        println!(
            "{:>10} {:>3} {:>11} {:>11} {:>7} {:>11} {:>11} {:>7} {:>8} {:>8} {:>7}",
            "design",
            "N",
            "sim tps",
            "model tps",
            "err%",
            "sim ms",
            "model ms",
            "err%",
            "sim ab%",
            "model%",
            "err%"
        );
        for c in &w.cells {
            println!(
                "{:>10} {:>3} {:>11.1} {:>11.1} {:>6.1}% {:>11.1} {:>11.1} {:>6.1}% {:>8.3} {:>8.3} {:>6.1}%",
                c.design.key(),
                c.replicas,
                c.measured_throughput_tps,
                c.predicted_throughput_tps,
                100.0 * c.throughput_error,
                c.measured_response_time * 1e3,
                c.predicted_response_time * 1e3,
                100.0 * c.response_error,
                c.measured_abort_rate * 1e2,
                c.predicted_abort_rate * 1e2,
                100.0 * c.abort_error,
            );
        }
    }
    println!(
        "\n# per-design error summary (mean / max over each design's cells; {} workloads)",
        report.workloads.len()
    );
    println!(
        "{:>10} {:>6} {:>16} {:>16} {:>16}",
        "design", "cells", "tput err", "resp err", "abort err"
    );
    for s in &report.summaries {
        println!(
            "{:>10} {:>6} {:>7.1}%/{:>6.1}% {:>7.1}%/{:>6.1}% {:>7.1}%/{:>6.1}%",
            s.design.key(),
            s.cells,
            100.0 * s.mean_throughput_error,
            100.0 * s.max_throughput_error,
            100.0 * s.mean_response_error,
            100.0 * s.max_response_error,
            100.0 * s.mean_abort_error,
            100.0 * s.max_abort_error,
        );
    }
}

fn plan_cmd(args: &[String], opts: &RunOpts) -> Result<(), String> {
    let profile = load_profile(args, opts)?;
    let designs = opts.designs(&[Design::MultiMaster, Design::SingleMaster]);
    let tps: f64 = parse_flag(args, "--tps")?.ok_or("missing --tps")?;
    let max_resp_ms: Option<f64> = parse_flag(args, "--max-response-ms")?;
    let max_abort_pct: Option<f64> = parse_flag(args, "--max-abort-pct")?;
    let clients: usize = opts.clients.unwrap_or_else(|| default_clients(&profile));
    let slo = Slo {
        min_throughput_tps: tps,
        max_response_time: max_resp_ms.map(|r| r / 1e3),
        max_abort_rate: max_abort_pct.map(|a| a / 1e2),
    };
    let plans: Vec<Plan> = plan_designs(
        &profile,
        &SystemConfig::lan_cluster(clients),
        &designs,
        &slo,
        16,
    )
    .map_err(|e| e.to_string())?;
    if opts.json {
        print_json(&plans);
        return Ok(());
    }
    if plans.is_empty() {
        println!("SLO infeasible within 16 replicas");
        return Ok(());
    }
    for p in plans {
        println!(
            "{}: {} replicas -> {:.1} tps, {:.1} ms, abort {:.3}%",
            p.design,
            p.replicas,
            p.prediction.throughput_tps,
            p.prediction.response_time * 1e3,
            p.prediction.abort_rate * 1e2
        );
    }
    Ok(())
}

fn profile_cmd(args: &[String], opts: &RunOpts) -> Result<(), String> {
    let w = flag(args, "--workload")?.ok_or("missing --workload")?;
    let spec = parse_workload(&w).map_err(|e| e.to_string())?;
    let outcome = Profiler::new(spec)
        .seed(opts.seed.unwrap_or(2009))
        .profile();
    if opts.json {
        print_json(&outcome.profile);
        return Ok(());
    }
    let p = &outcome.profile;
    println!("workload        {}", p.name);
    println!("Pr / Pw         {:.1}% / {:.1}%", p.pr * 1e2, p.pw * 1e2);
    println!("A1              {:.4}%", p.a1 * 1e2);
    println!(
        "rc (cpu/disk)   {:.2} / {:.2} ms",
        p.cpu.read * 1e3,
        p.disk.read * 1e3
    );
    println!(
        "wc (cpu/disk)   {:.2} / {:.2} ms",
        p.cpu.write * 1e3,
        p.disk.write * 1e3
    );
    println!(
        "ws (cpu/disk)   {:.2} / {:.2} ms",
        p.cpu.writeset * 1e3,
        p.disk.writeset * 1e3
    );
    println!("L(1)            {:.1} ms", p.l1 * 1e3);
    println!("U               {:.2}", p.update_ops);
    Ok(())
}

/// What `recover` did, serialized under `--json`.
#[derive(serde::Serialize)]
struct RecoverOutcome {
    /// Update commits the scripted workload ran.
    commits: usize,
    /// Commits per WAL frame.
    group_commit: usize,
    /// Where the checkpoint + WAL files were written.
    dir: String,
    /// Serialized checkpoint size, bytes.
    checkpoint_bytes: usize,
    /// WAL size as recovered (after any `--truncate-at` cut), bytes.
    wal_bytes: usize,
    /// Bytes of the WAL that survived frame + crc validation.
    wal_valid_bytes: usize,
    /// Whether a torn tail (or the cut) was truncated during the scan.
    wal_truncated: bool,
    /// Commits replayed from the WAL on top of the checkpoint.
    replayed: u64,
    /// Database version the recovered engine ended at.
    last_seq: u64,
    /// Whether the rebuilt database byte-matched the live reference.
    verified: bool,
}

/// Scripted durability round trip: deterministic workload → checkpoint +
/// WAL on disk → cold-start recovery from the files alone → byte-level
/// verification against states recorded from the live database.
fn recover_cmd(args: &[String], opts: &RunOpts) -> Result<(), String> {
    use replipred::sidb::{Checkpoint, Database, RowId, Value, WalRecord, WalWriter};

    let commits = parse_count(args, "--commits")?.unwrap_or(64);
    let group = parse_count(args, "--group-commit")?.unwrap_or(8);
    let cut: Option<usize> = parse_flag(args, "--truncate-at")?;
    let seed = opts.seed.unwrap_or(2009);
    let dir = match flag(args, "--dir")? {
        Some(d) => std::path::PathBuf::from(d),
        None => std::env::temp_dir().join(format!("replipred-recover-{seed}")),
    };
    std::fs::create_dir_all(&dir).map_err(|e| format!("cannot create {}: {e}", dir.display()))?;

    // The scripted workload: 16 seeded accounts, `commits` single-row
    // updates drawn from a splitmix64 stream — same seed, same bytes.
    const ROWS: u64 = 16;
    let mut db = Database::new();
    let t = db
        .create_table("acct", &["balance"])
        .expect("fresh database");
    let seeding = db.begin();
    for r in 0..ROWS {
        db.insert(seeding, t, RowId(r), vec![Value::Int(0)])
            .expect("seeding a fresh table");
    }
    db.commit(seeding).expect("seed commit");
    let checkpoint = db.checkpoint();
    let mut wal = WalWriter::new(group.max(1));
    let mut states = vec![db.durable_state()];
    let mut stream = seed;
    let mut draw = move || {
        stream = stream.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = stream;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    for _ in 0..commits {
        let row = draw() % ROWS;
        let amount = (draw() % 100_000) as i64;
        let txn = db.begin();
        db.update(txn, t, RowId(row), vec![Value::Int(amount)])
            .expect("seeded row exists");
        let info = db.commit(txn).expect("single writer never conflicts");
        wal.append(&WalRecord::Commit {
            seq: info.commit_seq,
            writeset: info.writeset,
        });
        states.push(db.durable_state());
    }

    // Persist, then recover from the files alone: nothing below survives
    // from the live objects.
    let cp_path = dir.join("checkpoint.sidb");
    let wal_path = dir.join("wal.sidb");
    std::fs::write(&cp_path, checkpoint.to_bytes())
        .map_err(|e| format!("cannot write {}: {e}", cp_path.display()))?;
    let mut wal_bytes = wal.into_bytes();
    if let Some(c) = cut {
        wal_bytes.truncate(c.min(wal_bytes.len()));
    }
    std::fs::write(&wal_path, &wal_bytes)
        .map_err(|e| format!("cannot write {}: {e}", wal_path.display()))?;
    drop((db, checkpoint));

    let cp_image =
        std::fs::read(&cp_path).map_err(|e| format!("cannot read {}: {e}", cp_path.display()))?;
    let cp_loaded =
        Checkpoint::from_bytes(&cp_image).map_err(|e| format!("bad checkpoint: {e}"))?;
    let wal_loaded =
        std::fs::read(&wal_path).map_err(|e| format!("cannot read {}: {e}", wal_path.display()))?;
    let (recovered, report) = Database::recover(&cp_loaded, &wal_loaded, cp_loaded.seq);
    let verified = recovered.durable_state() == states[report.replayed as usize];

    let outcome = RecoverOutcome {
        commits,
        group_commit: group,
        dir: dir.display().to_string(),
        checkpoint_bytes: cp_image.len(),
        wal_bytes: wal_loaded.len(),
        wal_valid_bytes: report.wal_valid_len,
        wal_truncated: report.wal_truncated,
        replayed: report.replayed,
        last_seq: report.last_seq,
        verified,
    };
    if opts.json {
        print_json(&outcome);
    } else {
        println!("dir             {}", outcome.dir);
        println!(
            "workload        {} commits over {ROWS} rows (group commit {})",
            outcome.commits, outcome.group_commit
        );
        println!("checkpoint      {} B", outcome.checkpoint_bytes);
        println!(
            "wal             {} B ({} B valid{})",
            outcome.wal_bytes,
            outcome.wal_valid_bytes,
            if outcome.wal_truncated {
                ", tail truncated"
            } else {
                ""
            }
        );
        println!(
            "replayed        {} commits -> version {}",
            outcome.replayed, outcome.last_seq
        );
        println!(
            "verified        {}",
            if verified {
                "yes (byte-identical to the live reference)"
            } else {
                "NO"
            }
        );
    }
    if !verified {
        return Err("recovered database does not match the live reference".to_string());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_opts_parse_rejects_bad_values() {
        let args = |v: &[&str]| -> Vec<String> { v.iter().map(|s| s.to_string()).collect() };
        assert!(RunOpts::parse(&args(&["--jobs", "0"])).is_err());
        assert!(RunOpts::parse(&args(&["--phase-window", "0"])).is_err());
        assert!(RunOpts::parse(&args(&["--phase-window", "-2"])).is_err());
        assert!(RunOpts::parse(&args(&["--schedule", "bogus@x"])).is_err());
        assert!(RunOpts::parse(&args(&["--design", "mm,mm"])).is_err());
        let opts = RunOpts::parse(&args(&[
            "--schedule",
            "crash@30=1,join@60=1,window=5",
            "--replicas",
            "4",
        ]))
        .unwrap();
        assert_eq!(opts.replicas, Some(4));
        assert!(opts.schedule.as_ref().is_some_and(Schedule::enabled));
    }

    #[test]
    fn phase_window_alone_enables_a_schedule() {
        let args: Vec<String> = vec!["--phase-window".into(), "2.5".into()];
        let opts = RunOpts::parse(&args).unwrap();
        let schedule = opts.schedule.expect("window implies a schedule");
        assert!(schedule.enabled());
        assert_eq!(schedule.effective_window(), 2.5);
    }
}
