//! The shared experiment driver: one [`Scenario`] describes *workload ×
//! design set × replica range × seeds*, and [`Scenario::run`] turns it
//! into a serializable [`ScenarioReport`] by driving the analytical
//! predictors and/or the mechanistic simulators through the design
//! registry.
//!
//! Every front end — the `replipred` CLI (`predict`, `simulate`,
//! `sweep`), the figure/table experiment bins in `replipred-bench`, and
//! library users — expresses experiments this way instead of
//! hand-rolling a predict→simulate→report loop per design.
//!
//! # Parallelism and determinism
//!
//! Predictor curves run inline (they cost microseconds, and model errors
//! must surface before simulation time is spent). The simulation grid
//! then decomposes into independent *cells* — one run per design ×
//! replica point × seed replication — and [`Scenario::jobs`] fans them
//! out over a deterministic scoped thread pool
//! ([`replipred_sim::pool`]); results are reassembled in grid order, so
//! **the report is byte-for-byte identical for every job count**,
//! including the serial `jobs(1)` default. [`Scenario::seeds`] replicates every simulated cell under
//! derived seeds and aggregates the replications into mean ± 95% CI rows
//! ([`ReplicationSummary`]); `measured` always holds the base-seed run,
//! so adding replications refines the error bars without moving the
//! curve.
//!
//! ```
//! use replipred::model::Design;
//! use replipred::scenario::Scenario;
//!
//! let report = Scenario::published("tpcw-shopping")
//!     .unwrap()
//!     .designs(vec![Design::MultiMaster, Design::SingleMaster])
//!     .replicas(1..=4)
//!     .run()
//!     .unwrap();
//! assert_eq!(report.designs.len(), 2);
//! let mm = &report.designs[0].predicted.as_ref().unwrap();
//! assert_eq!(mm.points.len(), 4);
//! ```

use serde::{Deserialize, Serialize};

use replipred_core::report::{Design, ScalabilityCurve};
use replipred_core::{ModelError, SystemConfig, WorkloadProfile};
use replipred_profiler::Profiler;
use replipred_repl::{DurabilityConfig, RunReport, Schedule, SimConfig, SimulatorRegistry};
use replipred_sim::pool::map_parallel;
use replipred_sim::rng::derive_stream_seed;
use replipred_sim::stats::BatchMeans;
use replipred_workload::spec::WorkloadSpec;
use replipred_workload::synth::{self, SynthError};
use replipred_workload::{rubis, tpcw};

/// The workload names the paper publishes profiles for (Tables 2-5).
pub const PUBLISHED_WORKLOADS: [&str; 5] = [
    "tpcw-browsing",
    "tpcw-shopping",
    "tpcw-ordering",
    "rubis-browsing",
    "rubis-bidding",
];

/// The published profile for `name`, if it is one of
/// [`PUBLISHED_WORKLOADS`].
pub fn published_profile(name: &str) -> Option<WorkloadProfile> {
    match name {
        "tpcw-browsing" => Some(WorkloadProfile::tpcw_browsing()),
        "tpcw-shopping" => Some(WorkloadProfile::tpcw_shopping()),
        "tpcw-ordering" => Some(WorkloadProfile::tpcw_ordering()),
        "rubis-browsing" => Some(WorkloadProfile::rubis_browsing()),
        "rubis-bidding" => Some(WorkloadProfile::rubis_bidding()),
        _ => None,
    }
}

/// The mechanistic workload spec for `name`, if it is one of
/// [`PUBLISHED_WORKLOADS`].
pub fn workload_spec(name: &str) -> Option<WorkloadSpec> {
    match name {
        "tpcw-browsing" => Some(tpcw::mix(tpcw::Mix::Browsing)),
        "tpcw-shopping" => Some(tpcw::mix(tpcw::Mix::Shopping)),
        "tpcw-ordering" => Some(tpcw::mix(tpcw::Mix::Ordering)),
        "rubis-browsing" => Some(rubis::mix(rubis::Mix::Browsing)),
        "rubis-bidding" => Some(rubis::mix(rubis::Mix::Bidding)),
        _ => None,
    }
}

/// The workload registry: resolves any workload *name* the tools accept —
/// one of the [`PUBLISHED_WORKLOADS`], or a synthetic-family description
/// `synth:<preset>` / `synth:k=v,...` / `synth:<preset>,k=v,...` (see
/// [`replipred_workload::synth`] for the knob grammar).
///
/// # Errors
///
/// Returns [`ScenarioError::UnknownWorkload`] for unregistered names and
/// [`ScenarioError::Synth`] for malformed `synth:` descriptions.
pub fn parse_workload(name: &str) -> Result<WorkloadSpec, ScenarioError> {
    if let Some(spec) = workload_spec(name) {
        return Ok(spec);
    }
    match name.strip_prefix("synth:") {
        Some(payload) => synth::parse(payload).map_err(ScenarioError::Synth),
        None => Err(ScenarioError::UnknownWorkload(name.to_string())),
    }
}

/// What can go wrong while building or running a scenario.
#[derive(Debug)]
pub enum ScenarioError {
    /// The workload name is not one of [`PUBLISHED_WORKLOADS`] (and not a
    /// `synth:` description).
    UnknownWorkload(String),
    /// A `synth:` workload description failed to parse or build.
    Synth(SynthError),
    /// Simulation was requested but the scenario only has an analytical
    /// profile (no mechanistic workload to simulate).
    SimulationUnavailable(String),
    /// The scenario has no replica points or no designs.
    EmptyScenario(&'static str),
    /// A model rejected its inputs or failed to solve.
    Model(ModelError),
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScenarioError::UnknownWorkload(w) => {
                write!(f, "unknown workload `{w}` (published: ")?;
                for (i, name) in PUBLISHED_WORKLOADS.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    f.write_str(name)?;
                }
                f.write_str("; synthetic: synth:<preset> or synth:k=v,...)")
            }
            ScenarioError::Synth(e) => write!(f, "{e}"),
            ScenarioError::SimulationUnavailable(w) => write!(
                f,
                "workload `{w}` has only an analytical profile; simulation needs \
                 a mechanistic workload (use a published workload name)"
            ),
            ScenarioError::EmptyScenario(what) => write!(f, "scenario has no {what}"),
            ScenarioError::Model(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ScenarioError {}

impl From<ModelError> for ScenarioError {
    fn from(e: ModelError) -> Self {
        ScenarioError::Model(e)
    }
}

/// Where the scenario's workload parameters come from.
#[derive(Debug, Clone)]
enum Source {
    /// A published profile plus its mechanistic workload: predictors use
    /// the paper's table values, simulators run the real thing.
    Published {
        profile: WorkloadProfile,
        spec: WorkloadSpec,
    },
    /// An explicit profile (e.g. `@profile.json`): predictors only.
    Profile(WorkloadProfile),
    /// A mechanistic workload: the profile is *measured* by the Section-4
    /// profiling pipeline at run time, then both sides run (what the
    /// paper's validation figures do).
    Profiled(WorkloadSpec),
}

/// A declarative experiment: workload × design set × replica range ×
/// seeds. Built fluently, run once, reported as a [`ScenarioReport`].
#[derive(Debug, Clone)]
pub struct Scenario {
    source: Source,
    designs: Vec<Design>,
    replicas: Vec<usize>,
    clients: Option<usize>,
    seed: u64,
    seeds: usize,
    jobs: usize,
    predict: bool,
    simulate: bool,
    system: Option<SystemConfig>,
    sim_template: Option<SimConfig>,
    schedule: Option<Schedule>,
    durability: Option<DurabilityConfig>,
}

impl Scenario {
    fn new(source: Source) -> Self {
        Scenario {
            source,
            designs: vec![Design::MultiMaster, Design::SingleMaster],
            replicas: (1..=16).collect(),
            clients: None,
            seed: 2009,
            seeds: 1,
            jobs: 1,
            predict: true,
            simulate: false,
            system: None,
            sim_template: None,
            schedule: None,
            durability: None,
        }
    }

    /// A scenario over one of the [`PUBLISHED_WORKLOADS`]: predictors use
    /// the published profile, simulators (if enabled) run the mechanistic
    /// workload.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::UnknownWorkload`] for other names.
    pub fn published(name: &str) -> Result<Self, ScenarioError> {
        match (published_profile(name), workload_spec(name)) {
            (Some(profile), Some(spec)) => Ok(Scenario::new(Source::Published { profile, spec })),
            _ => Err(ScenarioError::UnknownWorkload(name.to_string())),
        }
    }

    /// A scenario over any registered workload *name*: one of the
    /// [`PUBLISHED_WORKLOADS`] (predictors use the published profile) or a
    /// `synth:` description (the profile is measured by the Section-4
    /// pipeline at run time, as in [`Scenario::from_spec`]).
    ///
    /// # Errors
    ///
    /// Propagates [`parse_workload`]'s errors.
    pub fn workload(name: &str) -> Result<Self, ScenarioError> {
        if published_profile(name).is_some() {
            Scenario::published(name)
        } else {
            Ok(Scenario::from_spec(parse_workload(name)?))
        }
    }

    /// A scenario over an explicit profile (e.g. loaded from
    /// `profile --json` output). Prediction only: there is no mechanistic
    /// workload to simulate.
    pub fn from_profile(profile: WorkloadProfile) -> Self {
        Scenario::new(Source::Profile(profile))
    }

    /// A scenario over an explicit profile *and* its mechanistic
    /// workload: predictors use the given profile, simulators run the
    /// spec. For callers that already measured the profile (the validate
    /// grid profiles each workload once, then runs several sub-grids) —
    /// [`Scenario::from_spec`] would re-profile on every run.
    pub fn from_parts(profile: WorkloadProfile, spec: WorkloadSpec) -> Self {
        Scenario::new(Source::Published { profile, spec })
    }

    /// A scenario over a mechanistic workload spec. At run time the
    /// profile is *measured* on the standalone simulation by the paper's
    /// Section-4 pipeline — predictions are then driven purely by
    /// standalone profiling, exactly like the paper's validation.
    pub fn from_spec(spec: WorkloadSpec) -> Self {
        Scenario::new(Source::Profiled(spec))
    }

    /// The designs to compare (default: multi-master vs single-master).
    pub fn designs(mut self, designs: Vec<Design>) -> Self {
        self.designs = designs;
        self
    }

    /// Compares all known designs, standalone baseline included.
    pub fn all_designs(self) -> Self {
        let designs = Design::ALL.to_vec();
        self.designs(designs)
    }

    /// The replica counts to evaluate (default: `1..=16`).
    pub fn replicas(mut self, range: impl IntoIterator<Item = usize>) -> Self {
        self.replicas = range.into_iter().collect();
        self
    }

    /// Clients per replica (default: the workload's published `C`).
    pub fn clients(mut self, clients: usize) -> Self {
        self.clients = Some(clients);
        self
    }

    /// Seed for profiling and simulation runs (default 2009).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Number of seed replications per simulated cell (default 1; zero is
    /// treated as 1). Replication `0` uses [`Scenario::seed`] itself, so
    /// `measured` is unchanged by replication; replication `k > 0` uses a
    /// seed derived deterministically from `(seed, k)`. With two or more
    /// replications every design gains [`DesignReport::replicated`] rows
    /// aggregating throughput/response/abort into mean ± 95% CI.
    pub fn seeds(mut self, seeds: usize) -> Self {
        self.seeds = seeds.max(1);
        self
    }

    /// Number of worker threads for running the scenario's cells
    /// (default 1 = serial; zero is treated as 1). The report is
    /// identical for every job count — parallelism only changes
    /// wall-clock time. Use [`replipred_sim::pool::default_jobs`] for
    /// one-per-core.
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs.max(1);
        self
    }

    /// Enables/disables the analytical predictors (default on).
    pub fn predict(mut self, on: bool) -> Self {
        self.predict = on;
        self
    }

    /// Enables/disables the mechanistic simulation (default off; needs a
    /// workload spec, i.e. a published or [`Scenario::from_spec`]
    /// scenario).
    pub fn simulate(mut self, on: bool) -> Self {
        self.simulate = on;
        self
    }

    /// Overrides the deployment parameters (default:
    /// [`SystemConfig::lan_cluster`] at the workload's client count).
    pub fn system(mut self, config: SystemConfig) -> Self {
        self.system = Some(config);
        self
    }

    /// Template for simulation runs (windows, delays, MPL). The scenario
    /// overrides its `replicas` per point and its `seed` with
    /// [`Scenario::seed`]. Default: [`SimConfig::quick`].
    pub fn sim_config(mut self, template: SimConfig) -> Self {
        self.sim_template = Some(template);
        self
    }

    /// A time-phased [`Schedule`] applied to every simulated cell:
    /// replica crashes and rejoins, certifier outages, client-population
    /// ramps, and phase markers, all at absolute simulation times.
    /// Reports of scheduled runs carry a
    /// [`replipred_repl::TransientReport`] in
    /// [`RunReport::transient`] (windowed throughput/response/abort,
    /// recovery time, SLO-violation window). An empty schedule leaves
    /// every run byte-identical to an unscheduled one.
    pub fn schedule(mut self, schedule: Schedule) -> Self {
        self.schedule = Some(schedule);
        self
    }

    /// Sets the transient metrics window (seconds) on the scenario's
    /// schedule, creating an empty schedule if none was set — windowed
    /// collection without any injected events.
    pub fn phase_window(mut self, window: f64) -> Self {
        self.schedule = Some(self.schedule.unwrap_or_default().window(window));
        self
    }

    /// Redo-log durability for every simulated cell: commits pay the
    /// amortized group-commit disk term and crashed replicas rejoin by
    /// recovering from their checkpoint + WAL (see
    /// [`replipred_repl::config::DurabilityConfig`]). Default: off.
    pub fn durability(mut self, durability: DurabilityConfig) -> Self {
        self.durability = Some(durability);
        self
    }

    /// The seed of replication `rep`: the base seed for `rep == 0`, a
    /// deterministically derived stream seed otherwise.
    fn replication_seed(&self, rep: usize) -> u64 {
        if rep == 0 {
            self.seed
        } else {
            derive_stream_seed(self.seed, rep as u64)
        }
    }

    /// Runs the scenario: predictor curves and/or simulator measurements
    /// for every design, over the replica points.
    ///
    /// Predictor curves run inline (microseconds; model errors surface
    /// before any simulation time is spent), then the independent
    /// simulation cells execute on up to [`Scenario::jobs`] threads;
    /// results are reassembled in grid order, so the report does not
    /// depend on the job count.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::EmptyScenario`] for empty design/replica
    /// sets, [`ScenarioError::SimulationUnavailable`] when simulation is
    /// requested on a profile-only scenario, and propagates model errors.
    pub fn run(&self) -> Result<ScenarioReport, ScenarioError> {
        if self.designs.is_empty() {
            return Err(ScenarioError::EmptyScenario("designs"));
        }
        if self.replicas.is_empty() {
            return Err(ScenarioError::EmptyScenario("replica points"));
        }
        let (profile, spec) = match &self.source {
            Source::Published { profile, spec } => (profile.clone(), Some(spec.clone())),
            Source::Profile(profile) => (profile.clone(), None),
            Source::Profiled(spec) => {
                let measured = Profiler::new(spec.clone()).seed(self.seed).profile();
                (measured.profile, Some(spec.clone()))
            }
        };
        if self.simulate && spec.is_none() {
            return Err(ScenarioError::SimulationUnavailable(profile.name.clone()));
        }
        // Reference spec for deployment parameters: the scenario's own
        // spec, else whatever the registry resolves under the profile's
        // name — so an `@profile.json` of a published *or* synthetic
        // workload predicts at the same C and think time as the named
        // workload. Unresolvable names fall back to C = 50, Z = 1.0 s.
        let reference = match &spec {
            Some(s) => Some(s.clone()),
            None => parse_workload(&profile.name).ok(),
        };
        let clients = self
            .clients
            .or_else(|| reference.as_ref().map(|s| s.clients_per_replica))
            .unwrap_or(50);
        // Model and simulation must describe the same system: the default
        // configuration adopts the workload's think time (the published
        // mixes all use the paper's 1.0 s, but synthetic workloads roam),
        // and the resolved per-replica client count drives both sides.
        let config = self.system.clone().unwrap_or_else(|| {
            let mut c = SystemConfig::lan_cluster(clients);
            if let Some(s) = reference.as_ref() {
                c.think_time = s.think_time;
            }
            c
        });
        // The resolved config is authoritative for the deployment
        // parameters the simulation shares with the model: an explicit
        // [`Scenario::system`] override re-times the simulated clients
        // too, never just the predictor's closed network.
        let spec = spec.map(|mut s| {
            s.clients_per_replica = config.clients_per_replica;
            s.think_time = config.think_time;
            s
        });

        // Predictor curves run inline first: they cost microseconds, and
        // any model error must surface *before* simulation time is spent.
        let mut curves: Vec<Option<ScalabilityCurve>> = Vec::with_capacity(self.designs.len());
        for &design in &self.designs {
            curves.push(if self.predict {
                let predictor = design.predictor(profile.clone(), config.clone())?;
                Some(predictor.curve_at(&self.replicas)?)
            } else {
                None
            });
        }

        // Decompose the simulation grid into independent cells, in a fixed
        // order that the reassembly below mirrors exactly.
        struct Cell {
            design: Design,
            n: usize,
            rep: usize,
        }
        let mut cells = Vec::new();
        if self.simulate {
            for &design in &self.designs {
                for &n in &self.replicas {
                    for rep in 0..self.seeds {
                        cells.push(Cell { design, n, rep });
                    }
                }
            }
        }
        let spec_ref = &spec;
        let outputs = map_parallel(self.jobs, cells, |cell| {
            let spec = spec_ref.as_ref().expect("checked above");
            let seed = self.replication_seed(cell.rep);
            let mut cfg = SimConfig {
                replicas: cell.n,
                seed,
                ..self
                    .sim_template
                    .clone()
                    .unwrap_or_else(|| SimConfig::quick(cell.n, seed))
            };
            if let Some(schedule) = &self.schedule {
                cfg.schedule = schedule.clone();
            }
            if let Some(durability) = &self.durability {
                cfg.durability = durability.clone();
            }
            cell.design.simulator(spec.clone(), cfg).run()
        });

        // Reassemble in grid order (identical for every job count).
        let mut outputs = outputs.into_iter();
        let mut designs = Vec::with_capacity(self.designs.len());
        for (&design, predicted) in self.designs.iter().zip(curves) {
            let mut measured = Vec::new();
            let mut replicated = Vec::new();
            if self.simulate {
                for &n in &self.replicas {
                    let mut throughput = BatchMeans::new(1);
                    let mut response = BatchMeans::new(1);
                    let mut abort = BatchMeans::new(1);
                    for rep in 0..self.seeds {
                        let run = outputs.next().expect("cell order mirrors construction");
                        throughput.record(run.throughput_tps);
                        response.record(run.response_time);
                        abort.record(run.abort_rate);
                        if rep == 0 {
                            measured.push(run);
                        }
                    }
                    if self.seeds > 1 {
                        replicated.push(ReplicationSummary {
                            replicas: n,
                            seeds: self.seeds,
                            throughput_tps: throughput.mean().expect("at least one replication"),
                            throughput_ci95: throughput.ci95_half_width().unwrap_or(0.0),
                            response_time: response.mean().expect("at least one replication"),
                            response_ci95: response.ci95_half_width().unwrap_or(0.0),
                            abort_rate: abort.mean().expect("at least one replication"),
                            abort_ci95: abort.ci95_half_width().unwrap_or(0.0),
                        });
                    }
                }
            }
            designs.push(DesignReport {
                design,
                predicted,
                measured,
                replicated,
            });
        }
        Ok(ScenarioReport {
            workload: profile.name.clone(),
            seed: self.seed,
            seeds: self.seeds,
            clients_per_replica: config.clients_per_replica,
            replicas: self.replicas.clone(),
            designs,
        })
    }
}

/// Mean ± 95% confidence interval over the seed replications of one
/// replica point (present when [`Scenario::seeds`] ≥ 2). Half-widths come
/// from [`replipred_sim::stats::BatchMeans`] over the per-seed runs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplicationSummary {
    /// Replica count of this point.
    pub replicas: usize,
    /// Number of seed replications aggregated.
    pub seeds: usize,
    /// Mean committed throughput across replications, tps.
    pub throughput_tps: f64,
    /// 95% CI half-width of the throughput mean.
    pub throughput_ci95: f64,
    /// Mean response time across replications, seconds.
    pub response_time: f64,
    /// 95% CI half-width of the response-time mean.
    pub response_ci95: f64,
    /// Mean update abort rate across replications.
    pub abort_rate: f64,
    /// 95% CI half-width of the abort-rate mean.
    pub abort_ci95: f64,
}

/// One design's results within a scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DesignReport {
    /// The design evaluated.
    pub design: Design,
    /// Predicted scalability curve (present when prediction is enabled).
    pub predicted: Option<ScalabilityCurve>,
    /// Simulated measurements at the base seed, one per replica point
    /// (empty when simulation is disabled). Independent of
    /// [`Scenario::seeds`].
    pub measured: Vec<RunReport>,
    /// Mean ± CI across seed replications, one per replica point (empty
    /// unless [`Scenario::seeds`] ≥ 2 and simulation is enabled).
    #[serde(default)]
    pub replicated: Vec<ReplicationSummary>,
}

impl DesignReport {
    /// Predicted and measured results paired by replica point, for
    /// side-by-side validation output. Empty unless both sides ran.
    pub fn paired(&self) -> Vec<(&replipred_core::Prediction, &RunReport)> {
        match &self.predicted {
            Some(curve) => curve.points.iter().zip(&self.measured).collect(),
            None => Vec::new(),
        }
    }
}

/// The serializable result of one [`Scenario::run`] — what
/// `replipred sweep --json` emits.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioReport {
    /// Workload name (profile name).
    pub workload: String,
    /// Base seed used for profiling/simulation.
    pub seed: u64,
    /// Seed replications per simulated cell.
    #[serde(default)]
    pub seeds: usize,
    /// Clients per replica (`C`).
    pub clients_per_replica: usize,
    /// Replica points evaluated.
    pub replicas: Vec<usize>,
    /// Per-design results, in the order the designs were given.
    pub designs: Vec<DesignReport>,
}

impl ScenarioReport {
    /// The report for `design`, if it was part of the scenario.
    pub fn design(&self, design: Design) -> Option<&DesignReport> {
        self.designs.iter().find(|d| d.design == design)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_workload_is_rejected() {
        assert!(matches!(
            Scenario::published("tpcw-nope"),
            Err(ScenarioError::UnknownWorkload(_))
        ));
    }

    #[test]
    fn workload_registry_resolves_synth_names() {
        let spec = parse_workload("synth:write-heavy").unwrap();
        assert_eq!(spec.name, "synth:write-heavy");
        assert!((spec.pw() - 0.60).abs() < 1e-9);
        assert!(matches!(
            parse_workload("synth:no-such-preset"),
            Err(ScenarioError::Synth(_))
        ));
        assert!(matches!(
            parse_workload("nope"),
            Err(ScenarioError::UnknownWorkload(_))
        ));
        assert_eq!(
            parse_workload("tpcw-shopping").unwrap().name,
            "tpcw-shopping"
        );
    }

    #[test]
    fn workload_constructor_routes_published_and_synth_sources() {
        // Published names keep the published profile (no profiling run is
        // needed for prediction-only scenarios).
        let report = Scenario::workload("rubis-browsing")
            .unwrap()
            .designs(vec![Design::MultiMaster])
            .replicas([1])
            .run()
            .unwrap();
        assert_eq!(report.workload, "rubis-browsing");
        // Synth names profile live: the report carries the synth name and
        // a measurable curve.
        let report = Scenario::workload("synth:ycsb-b")
            .unwrap()
            .designs(vec![Design::MultiMaster])
            .replicas([1, 2])
            .run()
            .unwrap();
        assert_eq!(report.workload, "synth:ycsb-b");
        let curve = report.designs[0].predicted.as_ref().unwrap();
        assert_eq!(curve.points.len(), 2);
        assert!(curve.points[0].throughput_tps > 0.0);
    }

    #[test]
    fn explicit_system_override_retimes_the_simulation_too() {
        // `.system()` must describe both sides: the simulated clients
        // adopt the override's think time, not the spec's default.
        let base = Scenario::published("tpcw-shopping")
            .unwrap()
            .designs(vec![Design::MultiMaster])
            .replicas([1])
            .seed(3)
            .simulate(true)
            .sim_config(SimConfig {
                warmup: 2.0,
                duration: 8.0,
                ..SimConfig::quick(0, 0)
            });
        let system = |think: f64| SystemConfig {
            think_time: think,
            ..SystemConfig::lan_cluster(40)
        };
        let short = base.clone().system(system(0.5)).run().unwrap();
        let long = base.system(system(3.0)).run().unwrap();
        let s = short.designs[0].measured[0].throughput_tps;
        let l = long.designs[0].measured[0].throughput_tps;
        assert!(
            s > 1.5 * l,
            "tripling think time must cut simulated throughput: {s} vs {l}"
        );
    }

    #[test]
    fn profile_file_of_a_synth_workload_adopts_its_deployment_parameters() {
        // An `@profile.json` whose name is a synth description predicts
        // at the synth point's client count (and think time), exactly
        // like a published-profile file does for published names.
        let mut profile = WorkloadProfile::tpcw_shopping();
        profile.name = "synth:ycsb-b,clients=20".to_string();
        let report = Scenario::from_profile(profile)
            .designs(vec![Design::MultiMaster])
            .replicas([1])
            .run()
            .unwrap();
        assert_eq!(report.clients_per_replica, 20);
        // Unresolvable names keep the C = 50 fallback.
        let mut profile = WorkloadProfile::tpcw_shopping();
        profile.name = "my-custom-profile".to_string();
        let report = Scenario::from_profile(profile)
            .designs(vec![Design::MultiMaster])
            .replicas([1])
            .run()
            .unwrap();
        assert_eq!(report.clients_per_replica, 50);
    }

    #[test]
    fn profile_only_scenario_cannot_simulate() {
        let s = Scenario::from_profile(WorkloadProfile::tpcw_shopping())
            .replicas([2])
            .simulate(true);
        assert!(matches!(
            s.run(),
            Err(ScenarioError::SimulationUnavailable(_))
        ));
    }

    #[test]
    fn empty_sets_are_rejected() {
        let s = Scenario::published("tpcw-shopping").unwrap();
        assert!(matches!(
            s.clone().designs(vec![]).run(),
            Err(ScenarioError::EmptyScenario("designs"))
        ));
        assert!(matches!(
            s.replicas([]).run(),
            Err(ScenarioError::EmptyScenario("replica points"))
        ));
    }

    #[test]
    fn predict_only_run_covers_all_designs() {
        let report = Scenario::published("tpcw-shopping")
            .unwrap()
            .all_designs()
            .replicas([1, 4])
            .run()
            .unwrap();
        assert_eq!(report.workload, "tpcw-shopping");
        assert_eq!(report.designs.len(), 3);
        for d in &report.designs {
            let curve = d.predicted.as_ref().expect("prediction enabled");
            assert_eq!(curve.design, d.design);
            assert_eq!(curve.points.len(), 2);
            assert!(d.measured.is_empty());
        }
        // The registry preserves the requested order.
        let keys: Vec<_> = report.designs.iter().map(|d| d.design).collect();
        assert_eq!(keys, Design::ALL.to_vec());
    }

    #[test]
    fn report_round_trips_through_json() {
        let report = Scenario::published("rubis-browsing")
            .unwrap()
            .designs(vec![Design::MultiMaster])
            .replicas([1, 2])
            .run()
            .unwrap();
        let json = serde_json::to_string_pretty(&report).unwrap();
        let back: ScenarioReport = serde_json::from_str(&json).unwrap();
        assert_eq!(report, back);
    }

    #[test]
    fn parallel_run_matches_serial() {
        let scenario = Scenario::published("tpcw-shopping")
            .unwrap()
            .all_designs()
            .replicas([1, 2])
            .seed(7)
            .simulate(true)
            .sim_config(SimConfig {
                warmup: 2.0,
                duration: 8.0,
                ..SimConfig::quick(0, 0)
            });
        let serial = scenario.clone().jobs(1).run().unwrap();
        let parallel = scenario.jobs(4).run().unwrap();
        assert_eq!(
            serde_json::to_string(&serial).unwrap(),
            serde_json::to_string(&parallel).unwrap()
        );
    }

    #[test]
    fn seed_replications_add_ci_rows_without_moving_measured() {
        let scenario = Scenario::published("tpcw-shopping")
            .unwrap()
            .designs(vec![Design::MultiMaster])
            .replicas([2])
            .seed(11)
            .simulate(true)
            .sim_config(SimConfig {
                warmup: 2.0,
                duration: 8.0,
                ..SimConfig::quick(0, 0)
            });
        let single = scenario.clone().run().unwrap();
        let replicated = scenario.seeds(3).jobs(2).run().unwrap();
        let d1 = single.design(Design::MultiMaster).unwrap();
        let d3 = replicated.design(Design::MultiMaster).unwrap();
        // The base-seed measurement is replication 0: unchanged.
        assert_eq!(d1.measured, d3.measured);
        assert!(d1.replicated.is_empty());
        assert_eq!(d3.replicated.len(), 1);
        let summary = &d3.replicated[0];
        assert_eq!(summary.replicas, 2);
        assert_eq!(summary.seeds, 3);
        assert!(summary.throughput_tps > 0.0);
        // Three distinct seeds: the CI half-width is strictly positive.
        assert!(summary.throughput_ci95 > 0.0);
    }

    #[test]
    fn simulation_pairs_with_prediction() {
        let report = Scenario::published("tpcw-shopping")
            .unwrap()
            .designs(vec![Design::MultiMaster])
            .replicas([2])
            .seed(7)
            .simulate(true)
            .sim_config(SimConfig {
                warmup: 2.0,
                duration: 10.0,
                ..SimConfig::quick(0, 0)
            })
            .run()
            .unwrap();
        let d = report.design(Design::MultiMaster).unwrap();
        let paired = d.paired();
        assert_eq!(paired.len(), 1);
        let (predicted, measured) = paired[0];
        assert_eq!(predicted.replicas, 2);
        assert_eq!(measured.replicas, 2);
        assert!(measured.throughput_tps > 0.0);
    }
}
