//! The Section-6 validation, industrialized: a prediction-vs-simulation
//! **error grid** over *workloads × designs × replica points*.
//!
//! [`ValidationGrid`] profiles each workload once on the standalone
//! system (the paper's Section-4 pipeline — predictions are driven purely
//! by standalone profiling, exactly like the paper's validation), drives
//! [`Scenario`]s over the measured profile ([`Scenario::from_parts`]),
//! pairs every predicted point with its simulated measurement, and folds
//! the per-cell relative errors (throughput, response time, abort rate)
//! into per-design mean/max summaries. This is what `replipred validate`
//! prints and what regression tests assert against: any modelling or
//! simulator change that degrades prediction quality moves these numbers.
//!
//! # Determinism
//!
//! The grid inherits [`Scenario`]'s contract: the report is byte-identical
//! for every [`ValidationGrid::jobs`] value; parallelism only changes
//! wall-clock time.
//!
//! # The standalone anchor
//!
//! The replicated designs (`mm`, `sm`) are validated at every replica
//! point. The `standalone` design is different by construction: its
//! predictor models `n·C` clients on *one* node (the scale-up baseline)
//! while the mechanistic simulator always runs the physical one-node
//! system at `C` clients, so the two sides only describe the same system
//! at `n = 1`. The grid therefore pins standalone cells to the `n = 1`
//! anchor; if the replica points exclude 1, standalone contributes no
//! cells.
//!
//! # Error metric
//!
//! `|predicted - measured| / max(measured, floor)`. Throughput and
//! response time use a vanishing floor (they are strictly positive in any
//! closed-loop run). Abort rates sit near zero on the paper's workloads —
//! a 0.01% vs 0.02% disagreement is a 100% relative error with no
//! modelling significance — so the abort error is taken relative to at
//! least [`ABORT_FLOOR`] (0.1% aborts), keeping every cell finite and
//! read-only workloads (0 vs 0) at exactly zero error.

use serde::{Deserialize, Serialize};

use replipred_core::report::Design;
use replipred_profiler::Profiler;
use replipred_repl::SimConfig;
use replipred_sim::pool::map_parallel;
use replipred_workload::WorkloadSpec;

use crate::scenario::{parse_workload, Scenario, ScenarioError, PUBLISHED_WORKLOADS};

/// Synthetic presets included in the default grid, spanning the corners
/// of workload space around the five published mixes.
pub const DEFAULT_SYNTH_WORKLOADS: [&str; 4] = [
    "synth:read-only",
    "synth:write-heavy",
    "synth:hot-spot",
    "synth:ycsb-a",
];

/// Abort-rate error floor: errors are relative to at least this abort
/// probability (0.1%), because near-zero measured rates make the raw
/// relative error meaningless (see the module docs).
pub const ABORT_FLOOR: f64 = 1e-3;

/// The default workload set: the five published mixes plus
/// [`DEFAULT_SYNTH_WORKLOADS`].
pub fn default_workloads() -> Vec<String> {
    PUBLISHED_WORKLOADS
        .iter()
        .map(|w| w.to_string())
        .chain(DEFAULT_SYNTH_WORKLOADS.iter().map(|w| w.to_string()))
        .collect()
}

/// A declarative error-grid run: workloads × designs × replica points,
/// built fluently like [`Scenario`] and reported as a
/// [`ValidationReport`].
#[derive(Debug, Clone)]
pub struct ValidationGrid {
    workloads: Vec<String>,
    specs: Option<Vec<WorkloadSpec>>,
    designs: Vec<Design>,
    replicas: Vec<usize>,
    seed: u64,
    seeds: usize,
    jobs: usize,
    sim_template: Option<SimConfig>,
}

impl Default for ValidationGrid {
    fn default() -> Self {
        Self::new()
    }
}

impl ValidationGrid {
    /// The full default grid: all default workloads × all designs ×
    /// replica points `{1, 2, 4}`, seed 2009.
    pub fn new() -> Self {
        ValidationGrid {
            workloads: default_workloads(),
            specs: None,
            designs: Design::ALL.to_vec(),
            replicas: vec![1, 2, 4],
            seed: 2009,
            seeds: 1,
            jobs: 1,
            sim_template: None,
        }
    }

    /// The workload names to validate (published or `synth:`).
    pub fn workloads(mut self, workloads: Vec<String>) -> Self {
        self.workloads = workloads;
        self.specs = None;
        self
    }

    /// Typed workload specs to validate, bypassing name parsing — the
    /// programmatic mirror of [`ValidationGrid::workloads`] (like
    /// [`Scenario::from_spec`] next to [`Scenario::workload`]). Replaces
    /// any previously set name list.
    pub fn specs(mut self, specs: Vec<WorkloadSpec>) -> Self {
        self.specs = Some(specs);
        self
    }

    /// The designs to validate (default: all three).
    pub fn designs(mut self, designs: Vec<Design>) -> Self {
        self.designs = designs;
        self
    }

    /// The replica points of the grid (default `{1, 2, 4}`).
    pub fn replicas(mut self, replicas: impl IntoIterator<Item = usize>) -> Self {
        self.replicas = replicas.into_iter().collect();
        self
    }

    /// Seed for profiling and simulation (default 2009).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Seed replications per simulated cell (default 1); with ≥ 2 the
    /// measured side of every cell is the replication mean.
    pub fn seeds(mut self, seeds: usize) -> Self {
        self.seeds = seeds.max(1);
        self
    }

    /// Worker threads for the simulation cells (default 1). The report is
    /// identical for every value.
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs.max(1);
        self
    }

    /// Template for the simulation windows (default: 15 s warm-up, 60 s
    /// measurement — the windows the repo's model-vs-simulation
    /// tolerances are calibrated at).
    pub fn sim_config(mut self, template: SimConfig) -> Self {
        self.sim_template = Some(template);
        self
    }

    fn windows(&self) -> SimConfig {
        self.sim_template.clone().unwrap_or_else(|| SimConfig {
            warmup: 15.0,
            duration: 60.0,
            ..SimConfig::quick(0, 0)
        })
    }

    /// Runs the grid: each workload is profiled once (Section-4
    /// pipeline), then the replicated designs predict + simulate at every
    /// replica point and standalone at its `n = 1` anchor only; errors
    /// fold into per-design summaries.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::EmptyScenario`] when the grid has no
    /// workloads, designs or replica points, and propagates workload
    /// parse and model errors.
    pub fn run(&self) -> Result<ValidationReport, ScenarioError> {
        if self.designs.is_empty() {
            return Err(ScenarioError::EmptyScenario("designs"));
        }
        if self.replicas.is_empty() {
            return Err(ScenarioError::EmptyScenario("replica points"));
        }
        // Standalone only has its n = 1 anchor (module docs), so it runs
        // in a separate single-point sub-grid instead of being simulated
        // at every replica point and discarded.
        let replicated: Vec<Design> = self
            .designs
            .iter()
            .copied()
            .filter(|&d| d != Design::Standalone)
            .collect();
        let standalone_anchor =
            self.designs.contains(&Design::Standalone) && self.replicas.contains(&1);
        // Resolve the workload set up front — typed specs as given, or
        // every name parsed eagerly so registry errors surface in input
        // order before any profiling or simulation time is spent.
        let specs = match &self.specs {
            Some(specs) => specs.clone(),
            None => {
                let mut parsed = Vec::with_capacity(self.workloads.len());
                for name in &self.workloads {
                    parsed.push(parse_workload(name)?);
                }
                parsed
            }
        };
        if specs.is_empty() {
            return Err(ScenarioError::EmptyScenario("workloads"));
        }
        // Workloads are independent (profiling included), so the grid
        // fans them out over the worker budget; each workload's own
        // simulation cells split the remainder. The per-workload result
        // is jobs-invariant (Scenario's contract), so the report does not
        // depend on how the budget divides.
        let inner_jobs = (self.jobs / specs.len().max(1)).max(1);
        let outputs = map_parallel(self.jobs, specs, |spec| {
            self.run_workload(spec, &replicated, standalone_anchor, inner_jobs)
        });
        let mut workloads = Vec::with_capacity(outputs.len());
        for output in outputs {
            workloads.push(output?);
        }
        let summaries = summarize(&self.designs, &workloads);
        Ok(ValidationReport {
            seed: self.seed,
            seeds: self.seeds,
            replicas: self.replicas.clone(),
            workloads,
            summaries,
        })
    }

    /// One workload of the grid: profile once (Section-4 pipeline), run
    /// the replicated sub-grid and the standalone `n = 1` anchor from the
    /// same measurement, and fold the cells in the caller's design order.
    fn run_workload(
        &self,
        spec: WorkloadSpec,
        replicated: &[Design],
        standalone_anchor: bool,
        jobs: usize,
    ) -> Result<WorkloadValidation, ScenarioError> {
        let profile = Profiler::new(spec.clone())
            .seed(self.seed)
            .profile()
            .profile;
        let sub_grid = |designs: Vec<Design>, replicas: Vec<usize>| {
            Scenario::from_parts(profile.clone(), spec.clone())
                .designs(designs)
                .replicas(replicas)
                .seed(self.seed)
                .seeds(self.seeds)
                .jobs(jobs)
                .simulate(true)
                .sim_config(self.windows())
                .run()
        };
        let mut reports = Vec::new();
        if !replicated.is_empty() {
            reports.push(sub_grid(replicated.to_vec(), self.replicas.clone())?);
        }
        if standalone_anchor {
            reports.push(sub_grid(vec![Design::Standalone], vec![1])?);
        }
        let mut cells = Vec::new();
        for &design in &self.designs {
            let Some(d) = reports.iter().find_map(|r| r.design(design)) else {
                continue;
            };
            let curve = d.predicted.as_ref().expect("prediction enabled");
            for (i, (predicted, measured)) in curve.points.iter().zip(&d.measured).enumerate() {
                let (m_tput, m_resp, m_abort) = match d.replicated.get(i) {
                    Some(r) => (r.throughput_tps, r.response_time, r.abort_rate),
                    None => (
                        measured.throughput_tps,
                        measured.response_time,
                        measured.abort_rate,
                    ),
                };
                cells.push(CellError {
                    design,
                    replicas: predicted.replicas,
                    predicted_throughput_tps: predicted.throughput_tps,
                    measured_throughput_tps: m_tput,
                    throughput_error: rel_error(predicted.throughput_tps, m_tput, 1e-9),
                    predicted_response_time: predicted.response_time,
                    measured_response_time: m_resp,
                    response_error: rel_error(predicted.response_time, m_resp, 1e-9),
                    predicted_abort_rate: predicted.abort_rate,
                    measured_abort_rate: m_abort,
                    abort_error: rel_error(predicted.abort_rate, m_abort, ABORT_FLOOR),
                });
            }
        }
        let clients = reports
            .first()
            .map(|r| r.clients_per_replica)
            .unwrap_or(spec.clients_per_replica);
        Ok(WorkloadValidation {
            workload: spec.name.clone(),
            clients_per_replica: clients,
            cells,
        })
    }
}

/// Splits a comma-separated workload list: commas separate workloads,
/// except that `k=v` tokens continue the preceding `synth:` description
/// (the synth knob grammar itself uses commas —
/// `synth:hot-spot,hot-rows=64,tpcw-shopping` is two workloads). This is
/// the grammar behind `replipred validate --workload`.
pub fn split_workloads(value: &str) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    for token in value.split(',').map(str::trim).filter(|t| !t.is_empty()) {
        match out.last_mut() {
            // A bare `k=v` token continues the previous synth description;
            // a token with its own `synth:` prefix always starts a new
            // workload, even when its first knob carries an `=`.
            Some(last)
                if token.contains('=')
                    && !token.starts_with("synth:")
                    && last.starts_with("synth:") =>
            {
                last.push(',');
                last.push_str(token);
            }
            _ => out.push(token.to_string()),
        }
    }
    out
}

/// The doubling replica points `1, 2, 4, ..` up to and including `max` —
/// how `replipred validate --replicas N` picks its grid points.
pub fn doubling_points(max: usize) -> Vec<usize> {
    let mut points = Vec::new();
    let mut n = 1;
    while n < max {
        points.push(n);
        n *= 2;
    }
    points.push(max);
    points
}

/// `|predicted - measured| / max(measured, floor)` — always finite.
fn rel_error(predicted: f64, measured: f64, floor: f64) -> f64 {
    (predicted - measured).abs() / measured.max(floor)
}

fn summarize(designs: &[Design], workloads: &[WorkloadValidation]) -> Vec<DesignErrorSummary> {
    let mut summaries = Vec::new();
    for &design in designs {
        let errors: Vec<&CellError> = workloads
            .iter()
            .flat_map(|w| w.cells.iter())
            .filter(|c| c.design == design)
            .collect();
        if errors.is_empty() {
            continue;
        }
        let fold = |get: fn(&CellError) -> f64| {
            let mut sum = 0.0;
            let mut max = 0.0f64;
            for c in &errors {
                let e = get(c);
                sum += e;
                max = max.max(e);
            }
            (sum / errors.len() as f64, max)
        };
        let (mean_throughput_error, max_throughput_error) = fold(|c| c.throughput_error);
        let (mean_response_error, max_response_error) = fold(|c| c.response_error);
        let (mean_abort_error, max_abort_error) = fold(|c| c.abort_error);
        summaries.push(DesignErrorSummary {
            design,
            cells: errors.len(),
            mean_throughput_error,
            max_throughput_error,
            mean_response_error,
            max_response_error,
            mean_abort_error,
            max_abort_error,
        });
    }
    summaries
}

/// One grid cell: a design at a replica point within one workload, with
/// both sides of the comparison and their relative errors.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellError {
    /// The design evaluated.
    pub design: Design,
    /// Replica count of this point.
    pub replicas: usize,
    /// Model-predicted throughput, tps.
    pub predicted_throughput_tps: f64,
    /// Simulated throughput (replication mean when seeds ≥ 2), tps.
    pub measured_throughput_tps: f64,
    /// Relative throughput error.
    pub throughput_error: f64,
    /// Model-predicted response time, seconds.
    pub predicted_response_time: f64,
    /// Simulated response time, seconds.
    pub measured_response_time: f64,
    /// Relative response-time error.
    pub response_error: f64,
    /// Model-predicted update abort rate.
    pub predicted_abort_rate: f64,
    /// Simulated update abort rate.
    pub measured_abort_rate: f64,
    /// Abort-rate error, relative to at least [`ABORT_FLOOR`].
    pub abort_error: f64,
}

/// All grid cells of one workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadValidation {
    /// Workload name (published or `synth:` description).
    pub workload: String,
    /// Clients per replica the comparison ran at.
    pub clients_per_replica: usize,
    /// Per-design × replica-point cells, in design-then-replica order.
    pub cells: Vec<CellError>,
}

/// Mean/max relative errors of one design across every cell of the grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DesignErrorSummary {
    /// The design summarized.
    pub design: Design,
    /// Number of cells aggregated.
    pub cells: usize,
    /// Mean relative throughput error across cells.
    pub mean_throughput_error: f64,
    /// Worst-cell relative throughput error.
    pub max_throughput_error: f64,
    /// Mean relative response-time error.
    pub mean_response_error: f64,
    /// Worst-cell relative response-time error.
    pub max_response_error: f64,
    /// Mean abort-rate error (relative to at least [`ABORT_FLOOR`]).
    pub mean_abort_error: f64,
    /// Worst-cell abort-rate error.
    pub max_abort_error: f64,
}

/// The serializable result of one [`ValidationGrid::run`] — what
/// `replipred validate --json` emits.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ValidationReport {
    /// Base seed used for profiling/simulation.
    pub seed: u64,
    /// Seed replications per simulated cell.
    pub seeds: usize,
    /// Replica points of the grid.
    pub replicas: Vec<usize>,
    /// Per-workload cells, in the order the workloads were given.
    pub workloads: Vec<WorkloadValidation>,
    /// Per-design mean/max errors across the whole grid (designs with no
    /// cells — standalone without the `n = 1` anchor — are omitted).
    pub summaries: Vec<DesignErrorSummary>,
}

impl ValidationReport {
    /// The summary for `design`, if it contributed any cells.
    pub fn summary(&self, design: Design) -> Option<&DesignErrorSummary> {
        self.summaries.iter().find(|s| s.design == design)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_grid_covers_published_and_synth_corners() {
        let w = default_workloads();
        assert_eq!(
            w.len(),
            PUBLISHED_WORKLOADS.len() + DEFAULT_SYNTH_WORKLOADS.len()
        );
        assert!(w.iter().filter(|n| n.starts_with("synth:")).count() >= 3);
        for name in &w {
            parse_workload(name).unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }

    #[test]
    fn empty_grids_are_rejected() {
        assert!(matches!(
            ValidationGrid::new().workloads(vec![]).run(),
            Err(ScenarioError::EmptyScenario("workloads"))
        ));
        assert!(matches!(
            ValidationGrid::new().designs(vec![]).run(),
            Err(ScenarioError::EmptyScenario("designs"))
        ));
        assert!(matches!(
            ValidationGrid::new().replicas([]).run(),
            Err(ScenarioError::EmptyScenario("replica points"))
        ));
    }

    #[test]
    fn typed_specs_replace_the_name_list() {
        let spec = parse_workload("synth:ycsb-b").unwrap();
        let grid = ValidationGrid::new().specs(vec![spec]);
        assert!(matches!(
            grid.clone().specs(vec![]).run(),
            Err(ScenarioError::EmptyScenario("workloads"))
        ));
        // Setting names again drops the typed specs.
        assert!(matches!(
            grid.workloads(vec![]).run(),
            Err(ScenarioError::EmptyScenario("workloads"))
        ));
    }

    #[test]
    fn workload_splitting_keeps_synth_descriptions_whole() {
        assert_eq!(
            split_workloads("tpcw-shopping,rubis-bidding"),
            vec!["tpcw-shopping", "rubis-bidding"]
        );
        assert_eq!(
            split_workloads("synth:hot-spot,hot-rows=64,tpcw-shopping"),
            vec!["synth:hot-spot,hot-rows=64", "tpcw-shopping"]
        );
        assert_eq!(
            split_workloads("synth:pw=0.4,writes=3,synth:read-only"),
            vec!["synth:pw=0.4,writes=3", "synth:read-only"]
        );
        // A second synth description starts a new workload even when its
        // first knob carries an `=`.
        assert_eq!(
            split_workloads("synth:hot-spot,synth:pw=0.4,writes=3"),
            vec!["synth:hot-spot", "synth:pw=0.4,writes=3"]
        );
        // A k=v token with no preceding synth: description stands alone
        // (and fails workload resolution with a clear error later).
        assert_eq!(split_workloads("reads=3"), vec!["reads=3"]);
        assert!(split_workloads(" , ,").is_empty());
    }

    #[test]
    fn doubling_points_cover_one_to_max() {
        assert_eq!(doubling_points(1), vec![1]);
        assert_eq!(doubling_points(2), vec![1, 2]);
        assert_eq!(doubling_points(4), vec![1, 2, 4]);
        assert_eq!(doubling_points(6), vec![1, 2, 4, 6]);
        assert_eq!(doubling_points(16), vec![1, 2, 4, 8, 16]);
    }

    #[test]
    fn rel_error_uses_the_floor() {
        assert_eq!(rel_error(11.0, 10.0, 1e-9), 0.1);
        // 0 vs 0 aborts: exactly zero error, not 0/0.
        assert_eq!(rel_error(0.0, 0.0, ABORT_FLOOR), 0.0);
        // Tiny measured rates do not explode the error.
        assert!(rel_error(0.002, 0.0, ABORT_FLOOR) <= 2.0);
    }

    #[test]
    fn single_cell_grid_reports_standalone_anchor_only() {
        let report = ValidationGrid::new()
            .workloads(vec!["synth:ycsb-b".into()])
            .replicas([1, 2])
            .sim_config(SimConfig {
                warmup: 2.0,
                duration: 8.0,
                ..SimConfig::quick(0, 0)
            })
            .run()
            .unwrap();
        assert_eq!(report.workloads.len(), 1);
        let cells = &report.workloads[0].cells;
        let standalone: Vec<_> = cells
            .iter()
            .filter(|c| c.design == Design::Standalone)
            .collect();
        assert_eq!(standalone.len(), 1, "standalone pinned to n = 1");
        assert_eq!(standalone[0].replicas, 1);
        for design in [Design::MultiMaster, Design::SingleMaster] {
            let n: Vec<_> = cells.iter().filter(|c| c.design == design).collect();
            assert_eq!(n.len(), 2, "{design}: both replica points");
        }
        // Every error is finite (the JSON contract).
        for c in cells {
            assert!(c.throughput_error.is_finite());
            assert!(c.response_error.is_finite());
            assert!(c.abort_error.is_finite());
        }
        assert_eq!(report.summaries.len(), 3);
        assert_eq!(report.summary(Design::Standalone).unwrap().cells, 1);
    }
}
