//! Cross-validation of the two independent artifacts: the analytical
//! models (replipred-core) against the mechanistic cluster simulation
//! (replipred-repl) — the reproduction of the paper's Section 6
//! validation, in miniature.

use replipred::model::{MultiMasterModel, SingleMasterModel, SystemConfig};
use replipred::profiler::Profiler;
use replipred::repl::{MultiMasterSim, SimConfig, SingleMasterSim};
use replipred::workload::synth::SynthSpec;
use replipred::workload::{rubis, tpcw};

fn sim_cfg(n: usize) -> SimConfig {
    SimConfig {
        warmup: 15.0,
        duration: 60.0,
        ..SimConfig::quick(n, 2009)
    }
}

#[test]
fn mm_shopping_prediction_tracks_simulation() {
    let spec = tpcw::mix(tpcw::Mix::Shopping);
    let profile = Profiler::new(spec.clone()).seed(2009).profile().profile;
    let model = MultiMasterModel::new(profile, SystemConfig::lan_cluster(40));
    for n in [1usize, 4] {
        let predicted = model.predict(n).unwrap().throughput_tps;
        let simulated = MultiMasterSim::new(spec.clone(), sim_cfg(n))
            .run()
            .throughput_tps;
        let err = (predicted - simulated).abs() / simulated;
        assert!(
            err < 0.20,
            "N={n}: predicted {predicted:.1} vs simulated {simulated:.1} (err {:.0}%)",
            err * 100.0
        );
    }
}

#[test]
fn mm_browsing_scales_in_both_artifacts() {
    let spec = tpcw::mix(tpcw::Mix::Browsing);
    let profile = Profiler::new(spec.clone()).seed(1).profile().profile;
    let model = MultiMasterModel::new(profile, SystemConfig::lan_cluster(30));
    let p1 = model.predict(1).unwrap().throughput_tps;
    let p6 = model.predict(6).unwrap().throughput_tps;
    assert!(p6 > 5.0 * p1, "model: {p1} -> {p6}");
    let s1 = MultiMasterSim::new(spec.clone(), sim_cfg(1))
        .run()
        .throughput_tps;
    let s6 = MultiMasterSim::new(spec, sim_cfg(6)).run().throughput_tps;
    assert!(s6 > 5.0 * s1, "sim: {s1} -> {s6}");
}

#[test]
fn sm_ordering_saturates_in_both_artifacts() {
    // Paper Figure 8: the ordering mix saturates the master around 4
    // replicas; model and simulation must both show the plateau.
    let spec = tpcw::mix(tpcw::Mix::Ordering);
    let profile = Profiler::new(spec.clone()).seed(3).profile().profile;
    let model = SingleMasterModel::new(profile, SystemConfig::lan_cluster(50));
    let p4 = model.predict(4).unwrap().throughput_tps;
    let p8 = model.predict(8).unwrap().throughput_tps;
    assert!(p8 < 1.25 * p4, "model should plateau: {p4} -> {p8}");
    let s4 = SingleMasterSim::new(spec.clone(), sim_cfg(4))
        .run()
        .throughput_tps;
    let s8 = SingleMasterSim::new(spec, sim_cfg(8)).run().throughput_tps;
    assert!(s8 < 1.25 * s4, "sim should plateau: {s4} -> {s8}");
}

#[test]
fn mm_beats_sm_at_scale_on_ordering_in_both_artifacts() {
    // The paper's headline design comparison at an update-heavy mix.
    let spec = tpcw::mix(tpcw::Mix::Ordering);
    let profile = Profiler::new(spec.clone()).seed(5).profile().profile;
    let config = SystemConfig::lan_cluster(50);
    let mm_pred = MultiMasterModel::new(profile.clone(), config.clone())
        .predict(8)
        .unwrap()
        .throughput_tps;
    let sm_pred = SingleMasterModel::new(profile, config)
        .predict(8)
        .unwrap()
        .throughput_tps;
    assert!(mm_pred > 1.2 * sm_pred, "model: mm {mm_pred} sm {sm_pred}");
    let mm_sim = MultiMasterSim::new(spec.clone(), sim_cfg(8))
        .run()
        .throughput_tps;
    let sm_sim = SingleMasterSim::new(spec, sim_cfg(8)).run().throughput_tps;
    assert!(mm_sim > 1.2 * sm_sim, "sim: mm {mm_sim} sm {sm_sim}");
}

#[test]
fn rubis_bidding_shapes_match_the_paper() {
    // RUBiS bidding is disk-write-heavy. Paper Figures 10 and 12: the MM
    // system keeps gaining (modestly) up to ~6 replicas, while the SM
    // system is pinned by the master's disk. At 6 replicas the two designs
    // are nearly tied; the distinguishing shape is the growth pattern.
    let spec = rubis::mix(rubis::Mix::Bidding);
    let mm3 = MultiMasterSim::new(spec.clone(), sim_cfg(3))
        .run()
        .throughput_tps;
    let mm6 = MultiMasterSim::new(spec.clone(), sim_cfg(6))
        .run()
        .throughput_tps;
    assert!(mm6 > 1.1 * mm3, "MM should still gain: {mm3} -> {mm6}");
    let sm3 = SingleMasterSim::new(spec.clone(), sim_cfg(3))
        .run()
        .throughput_tps;
    let sm6 = SingleMasterSim::new(spec, sim_cfg(6)).run().throughput_tps;
    assert!(
        sm6 < 1.35 * sm3,
        "SM should be near its master-disk ceiling: {sm3} -> {sm6}"
    );
    // And the designs are within ~15% of each other at N=6.
    assert!((mm6 - sm6).abs() / sm6 < 0.15, "mm {mm6} vs sm {sm6}");
}

#[test]
fn sm_shopping_prediction_tracks_simulation_at_n8() {
    // Deep into the SM curve: at 8 replicas the shopping-mix master still
    // has update headroom (Figure 8's non-saturating regime), so the
    // prediction is dominated by the slave-tier MVA plus the master's
    // update routing rather than a hard ceiling. Measured on this seed:
    // model ~196 tps vs sim ~200 tps (~2% error). The 15% tolerance
    // leaves room for window/seed noise while still failing loudly if the
    // nested SM fixed point or the writeset-demand accounting regresses.
    let spec = tpcw::mix(tpcw::Mix::Shopping);
    let profile = Profiler::new(spec.clone()).seed(2009).profile().profile;
    let model = SingleMasterModel::new(profile, SystemConfig::lan_cluster(40));
    let predicted = model.predict(8).unwrap().throughput_tps;
    let simulated = SingleMasterSim::new(spec, sim_cfg(8)).run().throughput_tps;
    let err = (predicted - simulated).abs() / simulated;
    assert!(
        err < 0.15,
        "N=8: predicted {predicted:.1} vs simulated {simulated:.1} (err {:.0}%)",
        err * 100.0
    );
}

#[test]
fn synth_read_only_corner_scales_near_linearly_in_both_artifacts() {
    // The pure-read corner of the synthetic family: no writesets and no
    // conflicts, so every MM replica is an independent standalone system
    // and throughput must scale essentially linearly. Measured on this
    // seed: sim 24.9 -> 152.1 tps over N=1..6 (6.1x) and model 6.0x; the
    // >= 5x bar tolerates the sub-linear drift a CPU-saturated replica
    // shows in short windows, while catching any spurious coupling
    // (e.g. writeset or certifier load leaking into read-only runs).
    // Both presets keep the paper's 1.0 s think time, so the published
    // lan_cluster config describes the same closed loop the sim runs.
    let spec = SynthSpec::preset("read-only").unwrap().build().unwrap();
    let profile = Profiler::new(spec.clone()).seed(11).profile().profile;
    let model = MultiMasterModel::new(profile, SystemConfig::lan_cluster(50));
    let p1 = model.predict(1).unwrap().throughput_tps;
    let p6 = model.predict(6).unwrap().throughput_tps;
    assert!(p6 > 5.0 * p1, "model: {p1} -> {p6}");
    let s1 = MultiMasterSim::new(spec.clone(), sim_cfg(1))
        .run()
        .throughput_tps;
    let s6 = MultiMasterSim::new(spec, sim_cfg(6)).run().throughput_tps;
    assert!(s6 > 5.0 * s1, "sim: {s1} -> {s6}");
}

#[test]
fn synth_write_heavy_corner_does_not_scale_linearly() {
    // The anti-corner: 60% updates whose writesets cost 60% of the
    // original update demand, so at N=6 each replica burns most of its
    // capacity applying the other five replicas' writesets. Measured on
    // this seed: sim speedup 2.7x, model 2.9x at N=6 — the < 4x ceiling
    // asserts the saturation shape (a linear-scaling bug would show ~6x),
    // with slack because the exact plateau depends on the abort feedback.
    let spec = SynthSpec::preset("write-heavy").unwrap().build().unwrap();
    let profile = Profiler::new(spec.clone()).seed(13).profile().profile;
    let model = MultiMasterModel::new(profile, SystemConfig::lan_cluster(40));
    let p1 = model.predict(1).unwrap().throughput_tps;
    let p6 = model.predict(6).unwrap().throughput_tps;
    assert!(p6 < 4.0 * p1, "model should saturate: {p1} -> {p6}");
    let s1 = MultiMasterSim::new(spec.clone(), sim_cfg(1))
        .run()
        .throughput_tps;
    let s6 = MultiMasterSim::new(spec, sim_cfg(6)).run().throughput_tps;
    assert!(s6 < 4.0 * s1, "sim should saturate: {s1} -> {s6}");
    // And the model must still track the saturated simulation: ~6%
    // observed error at N=6; 20% is the repo-wide published-mix band.
    let err = (p6 - s6).abs() / s6;
    assert!(
        err < 0.20,
        "N=6: predicted {p6:.1} vs simulated {s6:.1} (err {:.0}%)",
        err * 100.0
    );
}

#[test]
fn response_time_prediction_is_sane() {
    let spec = tpcw::mix(tpcw::Mix::Shopping);
    let profile = Profiler::new(spec.clone()).seed(7).profile().profile;
    let model = MultiMasterModel::new(profile, SystemConfig::lan_cluster(40));
    let predicted = model.predict(4).unwrap().response_time;
    let simulated = MultiMasterSim::new(spec, sim_cfg(4)).run().response_time;
    let err = (predicted - simulated).abs() / simulated;
    assert!(
        err < 0.35,
        "predicted {:.1} ms vs simulated {:.1} ms",
        predicted * 1e3,
        simulated * 1e3
    );
}
