//! End-to-end tests of the profiling pipeline across every published
//! workload mix: the recovered parameters must be close to the workload's
//! ground truth, and must feed the models without error.

use replipred::model::{MultiMasterModel, SingleMasterModel, SystemConfig};
use replipred::profiler::Profiler;
use replipred::workload::spec::WorkloadSpec;
use replipred::workload::{rubis, tpcw};

fn all_specs() -> Vec<WorkloadSpec> {
    let mut v: Vec<WorkloadSpec> = tpcw::Mix::ALL.iter().map(|&m| tpcw::mix(m)).collect();
    v.extend(rubis::Mix::ALL.iter().map(|&m| rubis::mix(m)));
    v
}

#[test]
fn every_mix_profiles_to_a_valid_model_input() {
    for spec in all_specs() {
        let outcome = Profiler::new(spec.clone()).seed(11).profile();
        let p = &outcome.profile;
        p.validate()
            .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
        // Mix fractions within counting noise.
        assert!(
            (p.pw - spec.pw()).abs() < 0.03,
            "{}: Pw {} vs {}",
            spec.name,
            p.pw,
            spec.pw()
        );
        // Demands within 12% of ground truth.
        let rel = (p.cpu.read - spec.mean_read_cpu()).abs() / spec.mean_read_cpu();
        assert!(rel < 0.12, "{}: rc_cpu rel {rel}", spec.name);
        if spec.pw() > 0.0 {
            let rel = (p.cpu.write - spec.mean_write_cpu()).abs() / spec.mean_write_cpu();
            assert!(rel < 0.12, "{}: wc_cpu rel {rel}", spec.name);
            assert!(p.l1 > 0.0, "{}: L(1) missing", spec.name);
        }
    }
}

#[test]
fn profiles_drive_both_models_across_the_sweep() {
    for spec in all_specs() {
        let profile = Profiler::new(spec.clone()).seed(13).profile().profile;
        let config = SystemConfig::lan_cluster(spec.clients_per_replica);
        let mm = MultiMasterModel::new(profile.clone(), config.clone());
        let sm = SingleMasterModel::new(profile, config);
        let mm_curve = mm
            .predict_curve(16)
            .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
        let sm_curve = sm
            .predict_curve(16)
            .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
        for curve in [&mm_curve, &sm_curve] {
            for p in &curve.points {
                assert!(
                    p.throughput_tps.is_finite() && p.throughput_tps > 0.0,
                    "{}: bad tput at N={}",
                    spec.name,
                    p.replicas
                );
                assert!(p.response_time >= 0.0);
                assert!((0.0..1.0).contains(&p.abort_rate));
                assert!(p.bottleneck_utilization <= 1.0 + 1e-6);
            }
        }
    }
}

#[test]
fn profiled_u_matches_workload_definition() {
    let outcome = Profiler::new(tpcw::mix(tpcw::Mix::Ordering))
        .seed(17)
        .profile();
    // TPC-W update classes write 2 or 4 rows with equal weight -> U = 3.
    assert!(
        (outcome.profile.update_ops - 3.0).abs() < 0.3,
        "U = {}",
        outcome.profile.update_ops
    );
    let rubis = Profiler::new(rubis::mix(rubis::Mix::Bidding))
        .seed(17)
        .profile();
    assert!(
        (rubis.profile.update_ops - 2.0).abs() < 0.2,
        "RUBiS U = {}",
        rubis.profile.update_ops
    );
}

#[test]
fn log_summary_counts_are_consistent() {
    let outcome = Profiler::new(tpcw::mix(tpcw::Mix::Shopping))
        .seed(19)
        .profile();
    let s = &outcome.log_summary;
    assert_eq!(
        s.read_commits + s.update_commits,
        outcome.capture_run.read_commits + outcome.capture_run.update_commits,
        "log and metrics must agree on commit counts"
    );
    assert!((s.pr + s.pw - 1.0).abs() < 1e-9);
}
