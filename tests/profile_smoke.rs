//! Smoke tests for the published profiles, the `@profile.json` CLI
//! ingestion path, trait-object dispatch parity, and the `sweep` /
//! `--design all` / `--json` CLI paths.

use std::process::Command;

use replipred::model::{
    Design, MultiMasterModel, SingleMasterModel, StandaloneModel, SystemConfig, WorkloadProfile,
};
use replipred::scenario::{workload_spec, ScenarioReport};
use replipred::validate::ValidationReport;

/// All five profiles the paper publishes (Tables 2-5).
fn published() -> [WorkloadProfile; 5] {
    [
        WorkloadProfile::tpcw_browsing(),
        WorkloadProfile::tpcw_shopping(),
        WorkloadProfile::tpcw_ordering(),
        WorkloadProfile::rubis_browsing(),
        WorkloadProfile::rubis_bidding(),
    ]
}

#[test]
fn published_profiles_construct_and_validate() {
    for p in published() {
        assert!(!p.name.is_empty());
        p.validate()
            .unwrap_or_else(|e| panic!("profile {} invalid: {e}", p.name));
        assert!((p.pr + p.pw - 1.0).abs() < 1e-9, "{}: Pr + Pw != 1", p.name);
    }
}

#[test]
fn profile_json_roundtrips_through_pretty_form() {
    // The CLI writes pretty JSON (`profile --json`); the `@path` reader
    // must accept it unchanged.
    for p in published() {
        let json = serde_json::to_string_pretty(&p).unwrap();
        let back: WorkloadProfile = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back, "pretty JSON round-trip changed {}", p.name);
    }
}

#[test]
fn dyn_predictor_dispatch_matches_concrete_calls() {
    // The registry's `&dyn Predictor` must be a pure indirection: for
    // every published profile and every design, trait-object dispatch
    // returns bit-identical predictions to the concrete model types.
    for profile in published() {
        let clients = workload_spec(&profile.name)
            .expect("published profiles have specs")
            .clients_per_replica;
        let config = SystemConfig::lan_cluster(clients);
        for n in [1usize, 4] {
            for design in Design::ALL {
                let via_trait = design
                    .predictor(profile.clone(), config.clone())
                    .expect("published profiles are valid")
                    .predict(n)
                    .expect("solves");
                let concrete = match design {
                    Design::Standalone => StandaloneModel::new(profile.clone(), config.clone())
                        .unwrap()
                        .predict_scaled(n),
                    Design::MultiMaster => {
                        MultiMasterModel::new(profile.clone(), config.clone()).predict(n)
                    }
                    Design::SingleMaster => {
                        SingleMasterModel::new(profile.clone(), config.clone()).predict(n)
                    }
                }
                .expect("solves");
                assert_eq!(
                    via_trait, concrete,
                    "{}: dyn dispatch diverged for {design} at n={n}",
                    profile.name
                );
            }
        }
    }
}

#[test]
fn cli_accepts_profile_json_file() {
    let profile = WorkloadProfile::tpcw_shopping();
    let path = std::env::temp_dir().join(format!("replipred-smoke-{}.json", std::process::id()));
    std::fs::write(&path, serde_json::to_string_pretty(&profile).unwrap()).unwrap();

    let output = Command::new(env!("CARGO_BIN_EXE_replipred"))
        .args([
            "predict",
            "--workload",
            &format!("@{}", path.display()),
            "--replicas",
            "2",
        ])
        .output()
        .expect("spawn replipred binary");
    std::fs::remove_file(&path).ok();

    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        output.status.success(),
        "CLI failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    assert!(stdout.contains("tput (tps)"), "unexpected output: {stdout}");
}

#[test]
fn cli_sweep_design_all_emits_valid_scenario_report() {
    let output = Command::new(env!("CARGO_BIN_EXE_replipred"))
        .args([
            "sweep",
            "--workload",
            "tpcw-shopping",
            "--design",
            "all",
            "--replicas",
            "2",
            "--json",
        ])
        .output()
        .expect("spawn replipred binary");
    assert!(
        output.status.success(),
        "CLI failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    let report: ScenarioReport =
        serde_json::from_str(&stdout).expect("sweep --json emits a ScenarioReport");
    assert_eq!(report.workload, "tpcw-shopping");
    assert_eq!(report.replicas, vec![1, 2]);
    let designs: Vec<_> = report.designs.iter().map(|d| d.design).collect();
    assert_eq!(designs, Design::ALL.to_vec());
    for d in &report.designs {
        let curve = d.predicted.as_ref().expect("sweep predicts by default");
        assert_eq!(curve.points.len(), 2);
        assert!(curve.points.iter().all(|p| p.throughput_tps > 0.0));
        assert!(d.measured.is_empty(), "sweep only simulates on --simulate");
    }
}

#[test]
fn cli_sweep_profile_live_runs_the_profiling_pipeline() {
    // --profile-live measures the profile through the Section-4 pipeline
    // (workload → sidb statement log → profiler) before predicting.
    let output = Command::new(env!("CARGO_BIN_EXE_replipred"))
        .args([
            "sweep",
            "--workload",
            "tpcw-shopping",
            "--profile-live",
            "--design",
            "mm",
            "--replicas",
            "2",
            "--json",
        ])
        .output()
        .expect("spawn replipred binary");
    assert!(
        output.status.success(),
        "CLI failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    let report: ScenarioReport =
        serde_json::from_str(&stdout).expect("sweep --json emits a ScenarioReport");
    assert_eq!(report.workload, "tpcw-shopping");
    let curve = report.designs[0]
        .predicted
        .as_ref()
        .expect("profiled sweep predicts");
    assert!(curve.points.iter().all(|p| p.throughput_tps > 0.0));
}

#[test]
fn cli_sweep_profile_live_rejects_profile_files() {
    let output = Command::new(env!("CARGO_BIN_EXE_replipred"))
        .args([
            "sweep",
            "--workload",
            "@profile.json",
            "--profile-live",
            "--json",
        ])
        .output()
        .expect("spawn replipred binary");
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("--profile-live needs a published or synth: workload name"),
        "unexpected error: {stderr}"
    );
}

#[test]
fn cli_validate_emits_the_error_grid_json() {
    // The CI smoke path in miniature: one synthetic workload, the
    // replicated designs, the n=1 point.
    let output = Command::new(env!("CARGO_BIN_EXE_replipred"))
        .args([
            "validate",
            "--workload",
            "synth:write-heavy",
            "--design",
            "mm,sm",
            "--replicas",
            "1",
            "--jobs",
            "2",
            "--json",
        ])
        .output()
        .expect("spawn replipred binary");
    assert!(
        output.status.success(),
        "CLI failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    let report: ValidationReport =
        serde_json::from_str(&stdout).expect("validate --json emits a ValidationReport");
    assert_eq!(report.workloads.len(), 1);
    assert_eq!(report.workloads[0].workload, "synth:write-heavy");
    assert_eq!(report.workloads[0].cells.len(), 2, "mm + sm at n=1");
    assert_eq!(report.summaries.len(), 2);
    for s in &report.summaries {
        assert!(s.mean_throughput_error.is_finite());
        assert!(s.max_abort_error.is_finite());
    }
}

#[test]
fn cli_validate_rejects_malformed_synth_descriptions() {
    let output = Command::new(env!("CARGO_BIN_EXE_replipred"))
        .args(["validate", "--workload", "synth:no-such-preset"])
        .output()
        .expect("spawn replipred binary");
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("unknown synth preset"), "stderr: {stderr}");
}

#[test]
fn cli_plan_accepts_synth_workloads() {
    // `plan` profiles synth descriptions live before planning, so the
    // README's "every tool that takes --workload" claim holds for it too.
    let output = Command::new(env!("CARGO_BIN_EXE_replipred"))
        .args(["plan", "--workload", "synth:write-heavy", "--tps", "40"])
        .output()
        .expect("spawn replipred binary");
    assert!(
        output.status.success(),
        "CLI failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        stdout.contains("replicas ->"),
        "expected plan lines, got: {stdout}"
    );
}

#[test]
fn cli_predict_accepts_synth_workloads() {
    // `synth:` names flow through every scenario-backed subcommand; for
    // `predict` the profile is measured live before the curve prints.
    let output = Command::new(env!("CARGO_BIN_EXE_replipred"))
        .args([
            "predict",
            "--workload",
            "synth:ycsb-b,clients=20",
            "--design",
            "mm",
            "--replicas",
            "2",
            "--json",
        ])
        .output()
        .expect("spawn replipred binary");
    assert!(
        output.status.success(),
        "CLI failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    let report: ScenarioReport = serde_json::from_str(&stdout).expect("valid report");
    assert_eq!(report.workload, "synth:ycsb-b,clients=20");
    assert_eq!(report.clients_per_replica, 20);
}

#[test]
fn cli_predict_design_all_prints_every_design() {
    let output = Command::new(env!("CARGO_BIN_EXE_replipred"))
        .args([
            "predict",
            "--workload",
            "rubis-browsing",
            "--design",
            "all",
            "--replicas",
            "2",
        ])
        .output()
        .expect("spawn replipred binary");
    assert!(output.status.success());
    let stdout = String::from_utf8_lossy(&output.stdout);
    for design in Design::ALL {
        assert!(
            stdout.contains(&format!("# design {design} (model)")),
            "missing {design} section in: {stdout}"
        );
    }
}

#[test]
fn cli_rejects_repeated_flags() {
    let output = Command::new(env!("CARGO_BIN_EXE_replipred"))
        .args([
            "predict",
            "--workload",
            "tpcw-shopping",
            "--workload",
            "tpcw-ordering",
        ])
        .output()
        .expect("spawn replipred binary");
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("--workload given more than once"),
        "stderr: {stderr}"
    );
}

#[test]
fn cli_rejects_flag_as_flag_value() {
    // `--replicas --seed` must not silently consume `--seed` as a value.
    let output = Command::new(env!("CARGO_BIN_EXE_replipred"))
        .args([
            "predict",
            "--workload",
            "tpcw-shopping",
            "--replicas",
            "--seed",
        ])
        .output()
        .expect("spawn replipred binary");
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("missing value for --replicas"),
        "stderr: {stderr}"
    );
}

#[test]
fn cli_rejects_zero_jobs_and_seeds() {
    for flag in ["--jobs", "--seeds"] {
        let output = Command::new(env!("CARGO_BIN_EXE_replipred"))
            .args(["sweep", "--workload", "tpcw-shopping", flag, "0"])
            .output()
            .expect("spawn replipred binary");
        assert!(!output.status.success(), "{flag} 0 must be rejected");
        let stderr = String::from_utf8_lossy(&output.stderr);
        assert!(
            stderr.contains(&format!("{flag} must be at least 1")),
            "stderr: {stderr}"
        );
    }
}

#[test]
fn cli_rejects_seeds_without_simulate() {
    // Prediction is deterministic: seed replication on a predict-only
    // sweep would silently do nothing, so it is an error instead.
    let output = Command::new(env!("CARGO_BIN_EXE_replipred"))
        .args(["sweep", "--workload", "tpcw-shopping", "--seeds", "2"])
        .output()
        .expect("spawn replipred binary");
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("--seeds requires --simulate"),
        "stderr: {stderr}"
    );
}

#[test]
fn cli_rejects_non_numeric_jobs_and_seeds() {
    for (flag, value) in [("--jobs", "many"), ("--seeds", "3.5")] {
        let output = Command::new(env!("CARGO_BIN_EXE_replipred"))
            .args(["simulate", "--workload", "tpcw-shopping", flag, value])
            .output()
            .expect("spawn replipred binary");
        assert!(!output.status.success(), "{flag} {value} must be rejected");
        let stderr = String::from_utf8_lossy(&output.stderr);
        assert!(
            stderr.contains(&format!("invalid value for {flag}: {value}")),
            "stderr: {stderr}"
        );
    }
}

#[test]
fn cli_sweep_with_jobs_and_seeds_reports_ci() {
    let output = Command::new(env!("CARGO_BIN_EXE_replipred"))
        .args([
            "sweep",
            "--workload",
            "tpcw-shopping",
            "--design",
            "mm",
            "--replicas",
            "2",
            "--simulate",
            "--jobs",
            "2",
            "--seeds",
            "2",
            "--json",
        ])
        .output()
        .expect("spawn replipred binary");
    assert!(output.status.success());
    let stdout = String::from_utf8_lossy(&output.stdout);
    let report: replipred::scenario::ScenarioReport =
        serde_json::from_str(&stdout).expect("valid report JSON");
    assert_eq!(report.seeds, 2);
    let design = &report.designs[0];
    assert_eq!(design.measured.len(), 2);
    assert_eq!(design.replicated.len(), 2);
    for summary in &design.replicated {
        assert_eq!(summary.seeds, 2);
        assert!(summary.throughput_tps > 0.0);
    }
}

#[test]
fn cli_rejects_malformed_profile_json() {
    let path = std::env::temp_dir().join(format!("replipred-bad-{}.json", std::process::id()));
    std::fs::write(&path, "{ not json").unwrap();

    let output = Command::new(env!("CARGO_BIN_EXE_replipred"))
        .args(["predict", "--workload", &format!("@{}", path.display())])
        .output()
        .expect("spawn replipred binary");
    std::fs::remove_file(&path).ok();

    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("bad profile JSON"), "stderr: {stderr}");
}
