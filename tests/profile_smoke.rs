//! Smoke tests for the published profiles and the `@profile.json` CLI
//! ingestion path: a profile serialized with `profile --json` semantics
//! must be accepted back by `replipred predict --workload @file`.

use std::process::Command;

use replipred::model::WorkloadProfile;

/// All five profiles the paper publishes (Tables 2-5).
fn published() -> [WorkloadProfile; 5] {
    [
        WorkloadProfile::tpcw_browsing(),
        WorkloadProfile::tpcw_shopping(),
        WorkloadProfile::tpcw_ordering(),
        WorkloadProfile::rubis_browsing(),
        WorkloadProfile::rubis_bidding(),
    ]
}

#[test]
fn published_profiles_construct_and_validate() {
    for p in published() {
        assert!(!p.name.is_empty());
        p.validate()
            .unwrap_or_else(|e| panic!("profile {} invalid: {e}", p.name));
        assert!((p.pr + p.pw - 1.0).abs() < 1e-9, "{}: Pr + Pw != 1", p.name);
    }
}

#[test]
fn profile_json_roundtrips_through_pretty_form() {
    // The CLI writes pretty JSON (`profile --json`); the `@path` reader
    // must accept it unchanged.
    for p in published() {
        let json = serde_json::to_string_pretty(&p).unwrap();
        let back: WorkloadProfile = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back, "pretty JSON round-trip changed {}", p.name);
    }
}

#[test]
fn cli_accepts_profile_json_file() {
    let profile = WorkloadProfile::tpcw_shopping();
    let path = std::env::temp_dir().join(format!("replipred-smoke-{}.json", std::process::id()));
    std::fs::write(&path, serde_json::to_string_pretty(&profile).unwrap()).unwrap();

    let output = Command::new(env!("CARGO_BIN_EXE_replipred"))
        .args([
            "predict",
            "--workload",
            &format!("@{}", path.display()),
            "--replicas",
            "2",
        ])
        .output()
        .expect("spawn replipred binary");
    std::fs::remove_file(&path).ok();

    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        output.status.success(),
        "CLI failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    assert!(stdout.contains("tput (tps)"), "unexpected output: {stdout}");
}

#[test]
fn cli_rejects_malformed_profile_json() {
    let path = std::env::temp_dir().join(format!("replipred-bad-{}.json", std::process::id()));
    std::fs::write(&path, "{ not json").unwrap();

    let output = Command::new(env!("CARGO_BIN_EXE_replipred"))
        .args(["predict", "--workload", &format!("@{}", path.display())])
        .output()
        .expect("spawn replipred binary");
    std::fs::remove_file(&path).ok();

    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("bad profile JSON"), "stderr: {stderr}");
}
