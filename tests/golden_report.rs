//! Golden-report snapshot: one small simulated sweep serialized to a
//! checked-in JSON file, asserted **byte-identical** on every run.
//!
//! The jobs=1-vs-8 determinism tests prove a run agrees with itself; this
//! snapshot pins the absolute output across commits, so *any* behavioural
//! drift — an RNG stream reordered, an event tie broken differently, a
//! float folded in another order, a serializer change — fails loudly with
//! a diffable artifact instead of silently shifting every number.
//!
//! To regenerate after an *intentional* behaviour change, bless the new
//! snapshot and re-run:
//!
//! ```text
//! REPLIPRED_BLESS=1 cargo test --test golden_report
//! ```
//!
//! and review the JSON diff like any other code change.

use std::path::PathBuf;

use replipred::repl::SimConfig;
use replipred::scenario::Scenario;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("rubis_bidding_sweep_seed2009.json")
}

/// The pinned sweep: rubis-bidding × all designs × n ∈ {1, 4}, seed 2009
/// (the paper's year, the repo-wide default seed).
fn golden_scenario() -> Scenario {
    Scenario::published("rubis-bidding")
        .expect("published workload")
        .all_designs()
        .replicas([1, 4])
        .seed(2009)
        .simulate(true)
        .sim_config(SimConfig {
            warmup: 2.0,
            duration: 8.0,
            ..SimConfig::quick(0, 0)
        })
}

/// One sequential test so blessing never races a parallel reader: run,
/// (optionally) bless, byte-compare, then structurally check the file.
#[test]
fn scenario_report_matches_the_checked_in_golden_snapshot() {
    let report = golden_scenario().run().expect("golden scenario runs");
    let mut json = serde_json::to_string_pretty(&report).expect("report serializes");
    json.push('\n');
    let path = golden_path();
    if std::env::var("REPLIPRED_BLESS")
        .map(|v| v == "1")
        .unwrap_or(false)
    {
        // Write-then-rename so a concurrent reader never sees a
        // truncated snapshot.
        let tmp = path.with_extension("json.tmp");
        std::fs::write(&tmp, &json).expect("write blessed snapshot");
        std::fs::rename(&tmp, &path).expect("publish blessed snapshot");
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read golden snapshot {}: {e}\n(run with REPLIPRED_BLESS=1 to create it)",
            path.display()
        )
    });
    assert!(
        json == golden,
        "ScenarioReport drifted from the golden snapshot {}.\n\
         If this change is intentional, regenerate with REPLIPRED_BLESS=1 \
         and review the JSON diff.\n--- got ---\n{}\n--- want ---\n{}",
        path.display(),
        &json[..json.len().min(2000)],
        &golden[..golden.len().min(2000)],
    );

    // The snapshot is not just bytes: it must stay a loadable report with
    // the shape the sweep promises (guards against blessing a truncated
    // or hand-mangled file).
    let report: replipred::scenario::ScenarioReport =
        serde_json::from_str(&golden).expect("snapshot deserializes");
    assert_eq!(report.workload, "rubis-bidding");
    assert_eq!(report.seed, 2009);
    assert_eq!(report.replicas, vec![1, 4]);
    assert_eq!(report.designs.len(), 3);
    for d in &report.designs {
        assert_eq!(d.measured.len(), 2, "{}: two simulated points", d.design);
        assert!(d.predicted.is_some(), "{}: predicted curve", d.design);
        for r in &d.measured {
            assert!(r.throughput_tps > 0.0);
        }
    }
}
