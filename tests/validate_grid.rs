//! The `validate` error grid as a regression surface: determinism across
//! worker counts, and the paper's headline accuracy claim — standalone
//! profiling predicts replicated throughput within the Section-6 error
//! band — asserted as a hard bound on the grid's per-design summaries.

use replipred::model::Design;
use replipred::repl::SimConfig;
use replipred::validate::ValidationGrid;

/// Short windows for the determinism checks (they compare runs against
/// each other, so window length only affects wall-clock time).
fn quick_windows() -> SimConfig {
    SimConfig {
        warmup: 2.0,
        duration: 8.0,
        ..SimConfig::quick(0, 0)
    }
}

#[test]
fn validation_grid_is_identical_for_every_job_count() {
    // A published mix and a synthetic corner exercise both workload
    // sources (published profile + live profiling) through the grid.
    let grid = ValidationGrid::new()
        .workloads(vec!["tpcw-shopping".into(), "synth:hot-spot".into()])
        .replicas([1, 2])
        .sim_config(quick_windows());
    let serial = grid.clone().jobs(1).run().expect("serial grid");
    let parallel = grid.jobs(6).run().expect("parallel grid");
    assert_eq!(
        serde_json::to_string(&serial).expect("serialize serial"),
        serde_json::to_string(&parallel).expect("serialize parallel"),
        "jobs=6 grid diverged from jobs=1"
    );
}

#[test]
fn published_mix_throughput_error_stays_in_the_paper_band() {
    // The acceptance bar for every future modelling/simulator PR: on a
    // published mix, the MM and SM predictors driven purely by standalone
    // profiling stay within 20% mean throughput error of the mechanistic
    // simulation (the paper's Figures 6-13 show <15% on real hardware;
    // 20% leaves room for the short 60 s measurement window used here).
    let report = ValidationGrid::new()
        .workloads(vec!["tpcw-shopping".into()])
        .replicas([1, 4])
        .run()
        .expect("grid over a published mix");
    for design in [Design::MultiMaster, Design::SingleMaster] {
        let s = report.summary(design).expect("design summarized");
        assert_eq!(s.cells, 2);
        assert!(
            s.mean_throughput_error < 0.20,
            "{design}: mean throughput error {:.1}% exceeds the 20% band",
            100.0 * s.mean_throughput_error
        );
        assert!(
            s.mean_throughput_error.is_finite() && s.max_throughput_error.is_finite(),
            "{design}: errors must serialize as finite JSON numbers"
        );
    }
    // The standalone anchor is the tightest comparison of all: the same
    // one-node system measured two ways, differing only in model error.
    let standalone = report.summary(Design::Standalone).expect("anchor cell");
    assert_eq!(standalone.cells, 1);
    assert!(
        standalone.mean_throughput_error < 0.10,
        "standalone anchor error {:.1}% exceeds 10%",
        100.0 * standalone.mean_throughput_error
    );
}

#[test]
fn synthetic_corners_validate_end_to_end() {
    // Two corners of the synthetic family run through the same grid the
    // CLI exposes. Loose 35% bounds: the corners are chosen to stress the
    // models (write-heavy saturates replicas with writeset application),
    // and the quick windows trade variance for test time; what must hold
    // is that the predictions stay in the simulation's ballpark rather
    // than match the published-mix 20% band.
    let report = ValidationGrid::new()
        .workloads(vec!["synth:read-only".into(), "synth:write-heavy".into()])
        .designs(vec![Design::MultiMaster, Design::SingleMaster])
        .replicas([1, 2])
        .sim_config(SimConfig {
            warmup: 5.0,
            duration: 30.0,
            ..SimConfig::quick(0, 0)
        })
        .run()
        .expect("grid over synthetic corners");
    for design in [Design::MultiMaster, Design::SingleMaster] {
        let s = report.summary(design).expect("design summarized");
        assert_eq!(s.cells, 4, "{design}: 2 workloads x 2 points");
        assert!(
            s.mean_throughput_error < 0.35,
            "{design}: mean throughput error {:.1}% out of ballpark",
            100.0 * s.mean_throughput_error
        );
    }
}
