//! Replication-correctness tests built directly on the substrates:
//! snapshot-isolation invariants across certified replicas.

use replipred::repl::certifier::{Certification, Certifier};
use replipred::sidb::{Database, RowId, TableId, Value};

fn fresh_replica() -> (Database, TableId) {
    let mut db = Database::new();
    let acct = db.create_table("acct", &["balance"]).unwrap();
    let t = db.begin();
    for i in 0..100u64 {
        db.insert(t, acct, RowId(i), vec![Value::Int(1000)])
            .unwrap();
    }
    db.commit(t).unwrap();
    (db, acct)
}

fn balance(db: &mut Database, txn: replipred::sidb::TxnId, acct: TableId, row: u64) -> i64 {
    match db.read(txn, acct, RowId(row)).unwrap().unwrap()[0] {
        Value::Int(b) => b,
        _ => unreachable!("balance is an int"),
    }
}

/// Runs an update on `origin`, certifies it, and applies the certified
/// writeset to every replica (GSI multi-master commit path).
fn certified_update(
    replicas: &mut [Database],
    certifier: &mut Certifier,
    acct: TableId,
    origin: usize,
    row: u64,
    delta: i64,
    base_offset: u64,
) -> bool {
    let db = &mut replicas[origin];
    let txn = db.begin();
    let bal = match db.read(txn, acct, RowId(row)).unwrap() {
        Some(r) => match r[0] {
            Value::Int(b) => b,
            _ => unreachable!("balance is an int"),
        },
        None => {
            db.abort(txn).unwrap();
            return false;
        }
    };
    db.update(txn, acct, RowId(row), vec![Value::Int(bal + delta)])
        .unwrap();
    let mut ws = db.writeset_of(txn).unwrap();
    db.abort(txn).unwrap();
    ws.base_version -= base_offset;
    match certifier.certify(&ws) {
        Certification::Commit(_) => {
            for r in replicas.iter_mut() {
                r.apply_writeset(&ws).unwrap();
            }
            true
        }
        Certification::Abort => false,
    }
}

#[test]
fn replicas_converge_to_identical_state() {
    let (r0, acct) = fresh_replica();
    let (r1, _) = fresh_replica();
    let (r2, _) = fresh_replica();
    let mut replicas = vec![r0, r1, r2];
    let offset = replicas[0].version();
    let mut certifier = Certifier::new();
    // A deterministic interleaving of updates from all three replicas.
    for step in 0..300u64 {
        let origin = (step % 3) as usize;
        let row = (step * 17) % 100;
        certified_update(&mut replicas, &mut certifier, acct, origin, row, 1, offset);
    }
    // All replicas expose identical committed state.
    let scans: Vec<Vec<(RowId, Vec<Value>)>> = replicas
        .iter_mut()
        .map(|db| {
            let t = db.begin();
            let rows = db.scan(t, acct).unwrap();
            db.commit(t).unwrap();
            rows
        })
        .collect();
    assert_eq!(scans[0], scans[1]);
    assert_eq!(scans[1], scans[2]);
    // And the same version.
    assert_eq!(replicas[0].version(), replicas[1].version());
}

#[test]
fn no_lost_updates_under_certified_concurrency() {
    // Two replicas race increments on the same row from the same snapshot;
    // exactly one certifies. Total balance must equal seeded + commits.
    let (r0, acct) = fresh_replica();
    let (r1, _) = fresh_replica();
    let mut replicas = [r0, r1];
    let offset = replicas[0].version();
    let mut certifier = Certifier::new();
    let mut commits = 0i64;
    for round in 0..50u64 {
        let row = round % 10;
        // Both replicas prepare concurrent increments against their
        // current (identical) snapshots.
        let mut pending = Vec::new();
        for db in replicas.iter_mut() {
            let txn = db.begin();
            let bal = balance(db, txn, acct, row);
            db.update(txn, acct, RowId(row), vec![Value::Int(bal + 1)])
                .unwrap();
            let mut ws = db.writeset_of(txn).unwrap();
            db.abort(txn).unwrap();
            ws.base_version -= offset;
            pending.push(ws);
        }
        let mut round_commits = 0;
        for ws in pending {
            if let Certification::Commit(_) = certifier.certify(&ws) {
                for db in replicas.iter_mut() {
                    db.apply_writeset(&ws).unwrap();
                }
                round_commits += 1;
            }
        }
        // First committer wins: exactly one of the two conflicting
        // increments commits.
        assert_eq!(round_commits, 1, "round {round}");
        commits += round_commits;
    }
    // Balance conservation: no increment was lost or double-applied.
    let db = &mut replicas[0];
    let t = db.begin();
    let total: i64 = db
        .scan(t, acct)
        .unwrap()
        .iter()
        .map(|(_, r)| match r[0] {
            Value::Int(b) => b,
            _ => unreachable!(),
        })
        .sum();
    assert_eq!(total, 100 * 1000 + commits);
}

#[test]
fn stale_replica_catches_up_in_order() {
    let (r0, acct) = fresh_replica();
    let (r1, _) = fresh_replica();
    let mut replicas = [r0, r1];
    let offset = replicas[0].version();
    let mut certifier = Certifier::new();
    // Apply updates only through replica 0 for a while, leaving replica 1
    // stale, then catch it up from the certifier log.
    let mut applied_on_1 = 0u64;
    for step in 0..20u64 {
        let db = &mut replicas[0];
        let txn = db.begin();
        db.update(txn, acct, RowId(step % 5), vec![Value::Int(step as i64)])
            .unwrap();
        let mut ws = db.writeset_of(txn).unwrap();
        db.abort(txn).unwrap();
        ws.base_version -= offset;
        if let Certification::Commit(_) = certifier.certify(&ws) {
            replicas[0].apply_writeset(&ws).unwrap();
        }
    }
    // Catch-up: replica 1 pulls the missing suffix.
    let behind = replicas[1].version() - offset;
    for ws in certifier
        .writesets_between(behind, certifier.version())
        .to_vec()
    {
        replicas[1].apply_writeset(&ws).unwrap();
        applied_on_1 += 1;
    }
    assert_eq!(applied_on_1, 20);
    assert_eq!(replicas[0].version(), replicas[1].version());
    // Same state.
    let expected = {
        let db = &mut replicas[0];
        let t = db.begin();
        db.scan(t, acct).unwrap()
    };
    let got = {
        let db = &mut replicas[1];
        let t = db.begin();
        db.scan(t, acct).unwrap()
    };
    assert_eq!(expected, got);
}

#[test]
fn read_only_transactions_see_consistent_snapshots_during_replication() {
    let (r0, acct) = fresh_replica();
    let (r1, _) = fresh_replica();
    let mut replicas = vec![r0, r1];
    let offset = replicas[0].version();
    let mut certifier = Certifier::new();
    // Open a long-running reader on replica 1.
    let reader = replicas[1].begin();
    let before = balance(&mut replicas[1], reader, acct, 0);
    // Meanwhile, writes flow through replication.
    for _ in 0..5 {
        certified_update(&mut replicas, &mut certifier, acct, 0, 0, 100, offset);
    }
    // The reader's snapshot is unaffected (snapshot stability under GSI).
    let after = balance(&mut replicas[1], reader, acct, 0);
    assert_eq!(before, after);
    replicas[1].commit(reader).unwrap();
    // A fresh reader sees all five increments.
    let fresh = replicas[1].begin();
    let latest = balance(&mut replicas[1], fresh, acct, 0);
    assert_eq!(latest, before + 500);
}
