//! Time-phased scenarios end to end: a crash/rejoin schedule driven
//! through the public [`Scenario`] builder, with the transient section's
//! determinism and backward-compatibility contracts:
//!
//! - a replica-crash schedule yields a populated [`TransientReport`]
//!   (events echoed, recovery time measured, windows accounting for every
//!   commit);
//! - an **empty** schedule is byte-identical to no schedule at all — the
//!   phased API costs steady-state runs nothing;
//! - phased reports are identical for every `jobs` value;
//! - one golden snapshot pins the absolute phased output across commits
//!   (`REPLIPRED_BLESS=1` regenerates, as with the steady-state golden).

use std::path::PathBuf;

use replipred::model::Design;
use replipred::repl::{Schedule, SimConfig};
use replipred::scenario::Scenario;

/// The pinned phased run: rubis-bidding × MM × n = 4, crash replica 1
/// mid-run and rejoin it later, 5-second windows.
fn phased_scenario() -> Scenario {
    Scenario::published("rubis-bidding")
        .expect("published workload")
        .designs(vec![Design::MultiMaster])
        .replicas([4])
        .seed(2009)
        .predict(false)
        .simulate(true)
        .schedule(Schedule::new().crash(15.0, 1).join(30.0, 1).window(5.0))
        .sim_config(SimConfig {
            warmup: 5.0,
            duration: 40.0,
            ..SimConfig::quick(0, 0)
        })
}

#[test]
fn crash_schedule_reports_transients_through_the_scenario_driver() {
    let report = phased_scenario().run().expect("phased scenario runs");
    assert_eq!(report.designs.len(), 1);
    let run = &report.designs[0].measured[0];
    let t = run.transient.as_ref().expect("schedule enables transients");

    // The simulator echoes exactly what it applied, in firing order.
    let events: Vec<&str> = t.events.iter().map(|e| e.event.as_str()).collect();
    assert_eq!(events, ["crash replica 1", "rejoin replica 1"]);
    assert_eq!(t.events[0].at, 15.0);
    assert_eq!(t.events[1].at, 30.0);

    // Windows tile the measurement interval [5, 45] at the 5 s width and
    // account for every committed transaction in the steady-state report.
    assert_eq!(t.window, 5.0);
    assert_eq!(t.windows.len(), 8);
    let window_commits: u64 = t.windows.iter().map(|w| w.commits).sum();
    let total = run.throughput_tps * 40.0;
    assert!(
        (window_commits as f64 - total).abs() < 1e-6 * total.max(1.0),
        "windows hold {window_commits} commits, run reports {total}"
    );

    // The headline robustness metrics come out populated: the cluster
    // loses a replica and recovers within the run.
    assert!(t.baseline_tps > 0.0);
    let recovery = t.recovery_time.expect("recovered within the run");
    assert!(recovery > 0.0 && recovery <= 30.0, "recovery = {recovery}");
    assert!(t.peak_abort_rate >= 0.0);
}

#[test]
fn empty_schedule_is_byte_identical_to_no_schedule() {
    let base = || {
        Scenario::published("rubis-bidding")
            .expect("published workload")
            .all_designs()
            .replicas([1, 4])
            .seed(2009)
            .simulate(true)
            .sim_config(SimConfig {
                warmup: 2.0,
                duration: 8.0,
                ..SimConfig::quick(0, 0)
            })
    };
    let plain = base().run().expect("plain run");
    let scheduled = base()
        .schedule(Schedule::default())
        .run()
        .expect("empty-schedule run");
    let plain_json = serde_json::to_string_pretty(&plain).expect("serializes");
    let scheduled_json = serde_json::to_string_pretty(&scheduled).expect("serializes");
    assert_eq!(
        plain_json, scheduled_json,
        "a disabled schedule must not change a steady-state report"
    );
}

#[test]
fn phased_reports_are_jobs_invariant() {
    let sequential = phased_scenario().jobs(1).run().expect("jobs = 1");
    let parallel = phased_scenario().jobs(8).run().expect("jobs = 8");
    let a = serde_json::to_string_pretty(&sequential).expect("serializes");
    let b = serde_json::to_string_pretty(&parallel).expect("serializes");
    assert_eq!(a, b, "phased reports must not depend on worker count");
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("rubis_bidding_phases_seed2009.json")
}

/// A smaller pinned phased run for the snapshot: n = 2, crash + rejoin,
/// 2-second windows over a 16 s measurement.
fn golden_phases_scenario() -> Scenario {
    Scenario::published("rubis-bidding")
        .expect("published workload")
        .designs(vec![Design::MultiMaster])
        .replicas([2])
        .seed(2009)
        .predict(false)
        .simulate(true)
        .schedule(Schedule::new().crash(6.0, 1).join(12.0, 1).window(2.0))
        .sim_config(SimConfig {
            warmup: 2.0,
            duration: 16.0,
            ..SimConfig::quick(0, 0)
        })
}

#[test]
fn phased_report_matches_the_checked_in_golden_snapshot() {
    let report = golden_phases_scenario().run().expect("golden phased run");
    let mut json = serde_json::to_string_pretty(&report).expect("report serializes");
    json.push('\n');
    let path = golden_path();
    if std::env::var("REPLIPRED_BLESS")
        .map(|v| v == "1")
        .unwrap_or(false)
    {
        let tmp = path.with_extension("json.tmp");
        std::fs::write(&tmp, &json).expect("write blessed snapshot");
        std::fs::rename(&tmp, &path).expect("publish blessed snapshot");
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read golden snapshot {}: {e}\n(run with REPLIPRED_BLESS=1 to create it)",
            path.display()
        )
    });
    assert!(
        json == golden,
        "phased report drifted from the golden snapshot {}.\n\
         If this change is intentional, regenerate with REPLIPRED_BLESS=1 \
         and review the JSON diff.\n--- got ---\n{}\n--- want ---\n{}",
        path.display(),
        &json[..json.len().min(2000)],
        &golden[..golden.len().min(2000)],
    );

    // The snapshot must stay a loadable report whose transient section
    // has the promised shape.
    let report: replipred::scenario::ScenarioReport =
        serde_json::from_str(&golden).expect("snapshot deserializes");
    let run = &report.designs[0].measured[0];
    let t = run.transient.as_ref().expect("transient section present");
    assert_eq!(t.windows.len(), 8, "2 s windows over [2, 18]");
    assert_eq!(t.events.len(), 2, "crash + rejoin echoed");
}
