//! Serde round-trips for every serializable boundary type: profiles and
//! predictions are meant to be stored (capacity-planning records) and
//! shipped between services.

use replipred::model::{MultiMasterModel, SystemConfig, WorkloadProfile};
use replipred::repl::{SimConfig, StandaloneSim};
use replipred::sidb::{RowId, TableId, Value, WriteItem, WriteOp, WriteSet};
use replipred::workload::tpcw;

#[test]
fn workload_profile_roundtrip() {
    for p in WorkloadProfile::all_paper_profiles() {
        let json = serde_json::to_string(&p).unwrap();
        let back: WorkloadProfile = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }
}

#[test]
fn prediction_roundtrip() {
    let model = MultiMasterModel::new(
        WorkloadProfile::tpcw_shopping(),
        SystemConfig::lan_cluster(40),
    );
    let p = model.predict(8).unwrap();
    let json = serde_json::to_string(&p).unwrap();
    let back: replipred::model::Prediction = serde_json::from_str(&json).unwrap();
    assert_eq!(p, back);
}

#[test]
fn scalability_curve_roundtrip() {
    let model = MultiMasterModel::new(
        WorkloadProfile::tpcw_browsing(),
        SystemConfig::lan_cluster(30),
    );
    let curve = model.predict_curve(4).unwrap();
    let json = serde_json::to_string(&curve).unwrap();
    let back: replipred::model::report::ScalabilityCurve = serde_json::from_str(&json).unwrap();
    assert_eq!(curve, back);
}

#[test]
fn run_report_roundtrip() {
    let report = StandaloneSim::new(
        tpcw::mix(tpcw::Mix::Shopping),
        SimConfig {
            warmup: 5.0,
            duration: 10.0,
            ..SimConfig::quick(1, 1)
        },
    )
    .run();
    let json = serde_json::to_string(&report).unwrap();
    let back: replipred::repl::RunReport = serde_json::from_str(&json).unwrap();
    assert_eq!(report, back);
}

#[test]
fn writeset_roundtrip() {
    let ws = WriteSet {
        base_version: 42,
        items: vec![
            WriteItem {
                table: TableId(3),
                row: RowId(7),
                op: WriteOp::Update,
                data: Some(vec![Value::text("x"), Value::Int(1), Value::Float(0.5)]),
            },
            WriteItem {
                table: TableId(3),
                row: RowId(9),
                op: WriteOp::Delete,
                data: None,
            },
        ],
    };
    let json = serde_json::to_string(&ws).unwrap();
    let back: WriteSet = serde_json::from_str(&json).unwrap();
    assert_eq!(ws, back);
}

#[test]
fn workload_spec_roundtrip() {
    let spec = tpcw::mix(tpcw::Mix::Ordering);
    let json = serde_json::to_string(&spec).unwrap();
    let back: replipred::workload::spec::WorkloadSpec = serde_json::from_str(&json).unwrap();
    assert_eq!(spec, back);
}
