//! Fault injection across the replication stack: certifier failover in
//! the middle of a replicated update stream must not lose or duplicate
//! any committed effect.

use replipred::repl::certifier::Certification;
use replipred::repl::replicated_certifier::ReplicatedCertifier;
use replipred::sidb::{Database, RowId, TableId, Value};

fn fresh_replica() -> (Database, TableId) {
    let mut db = Database::new();
    let table = db.create_table("t", &["v"]).unwrap();
    let s = db.begin();
    for i in 0..50u64 {
        db.insert(s, table, RowId(i), vec![Value::Int(0)]).unwrap();
    }
    db.commit(s).unwrap();
    (db, table)
}

#[test]
fn updates_survive_leader_failover_mid_stream() {
    let (r0, table) = fresh_replica();
    let (r1, _) = fresh_replica();
    let mut replicas = [r0, r1];
    // Anchor the certifier at the replicas' seeded version: writesets
    // certify with their local base_version as-is, no rebasing.
    let mut cert = ReplicatedCertifier::new_at(3, replicas[0].version());
    let mut committed_rows = Vec::new();
    for step in 0..60u64 {
        // Fail the leader a third of the way in, and a backup later.
        if step == 20 {
            let l = cert.leader();
            cert.kill(l);
        }
        if step == 40 {
            // Kill a non-leader member; quorum (2/3) persists.
            let victim = (cert.leader() + 1) % 3;
            cert.kill(victim);
        }
        let origin = (step % 2) as usize;
        let row = RowId(step % 50);
        let db = &mut replicas[origin];
        let txn = db.begin();
        db.update(txn, table, row, vec![Value::Int(step as i64)])
            .unwrap();
        let ws = db.writeset_of(txn).unwrap();
        db.abort(txn).unwrap();
        match cert.certify(&ws).expect("quorum maintained throughout") {
            Certification::Commit(_) => {
                for r in replicas.iter_mut() {
                    r.apply_writeset(&ws).unwrap();
                }
                committed_rows.push((row, step as i64));
            }
            Certification::Abort => {}
        }
    }
    assert!(committed_rows.len() >= 55, "most serialized updates commit");
    // Both replicas agree and reflect exactly the committed history.
    let mut expected: std::collections::BTreeMap<RowId, i64> =
        (0..50).map(|r| (RowId(r), 0)).collect();
    for (row, v) in committed_rows {
        expected.insert(row, v);
    }
    for db in replicas.iter_mut() {
        let t = db.begin();
        for (&row, &v) in &expected {
            let got = db.read(t, table, row).unwrap().unwrap();
            assert_eq!(got[0], Value::Int(v), "row {row}");
        }
        db.commit(t).unwrap();
    }
}

#[test]
fn no_quorum_blocks_rather_than_diverges() {
    let (mut db, table) = fresh_replica();
    let anchor = db.version();
    let mut cert = ReplicatedCertifier::new_at(3, anchor);
    let txn = db.begin();
    db.update(txn, table, RowId(1), vec![Value::Int(1)])
        .unwrap();
    let ws = db.writeset_of(txn).unwrap();
    db.abort(txn).unwrap();
    cert.kill(0);
    cert.kill(1);
    // The service refuses rather than risking a split decision.
    assert!(cert.certify(&ws).is_err());
    // After recovery it serves again, with no lost state.
    cert.restart(0);
    assert!(matches!(cert.certify(&ws), Ok(Certification::Commit(v)) if v == anchor + 1));
}
