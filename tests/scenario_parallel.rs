//! Parallel-execution determinism: `Scenario::run` must produce a
//! byte-identical `ScenarioReport` for every `jobs` value.
//!
//! This is the contract that lets `--jobs` default to one worker per
//! core: parallelism may only change wall-clock time, never results.

use replipred::model::Design;
use replipred::scenario::{Scenario, PUBLISHED_WORKLOADS};
use replipred_repl::SimConfig;

/// Short windows keep the 5 × 3 × 2-point grid fast while still driving
/// every event type (commits, certification, propagation, retries).
fn quick_windows() -> SimConfig {
    SimConfig {
        warmup: 2.0,
        duration: 8.0,
        ..SimConfig::quick(0, 0)
    }
}

#[test]
fn parallel_sweep_is_identical_to_serial_for_all_published_workloads() {
    for workload in PUBLISHED_WORKLOADS {
        let scenario = Scenario::published(workload)
            .expect("published workload")
            .designs(Design::ALL.to_vec())
            .replicas([1, 2])
            .seed(2009)
            .simulate(true)
            .sim_config(quick_windows());
        let serial = scenario.clone().jobs(1).run().expect("serial run");
        let parallel = scenario.jobs(8).run().expect("parallel run");
        assert_eq!(
            serde_json::to_string(&serial).expect("serialize serial"),
            serde_json::to_string(&parallel).expect("serialize parallel"),
            "jobs=8 diverged from jobs=1 on {workload}"
        );
    }
}

#[test]
fn parallel_multi_seed_sweep_is_identical_to_serial() {
    // Seed replication fans out more cells per point; the reassembly (and
    // the CI aggregation order) must still be independent of the pool.
    let scenario = Scenario::published("rubis-bidding")
        .expect("published workload")
        .designs(vec![Design::MultiMaster, Design::SingleMaster])
        .replicas([1, 2])
        .seed(7)
        .seeds(3)
        .simulate(true)
        .sim_config(quick_windows());
    let serial = scenario.clone().jobs(1).run().expect("serial run");
    let parallel = scenario.jobs(8).run().expect("parallel run");
    assert_eq!(
        serde_json::to_string(&serial).expect("serialize serial"),
        serde_json::to_string(&parallel).expect("serialize parallel"),
    );
}
