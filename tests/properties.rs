//! Property-based tests (proptest) on the core invariants, spanning the
//! solver, the abort algebra and the storage engine.

use proptest::prelude::*;
use replipred::model::{AbortModel, MultiMasterModel, SystemConfig, WorkloadProfile};
use replipred::mva::{approx, bounds, exact, ClosedNetwork};
use replipred::sidb::{Database, RowId, TableId, Value};
use replipred::workload::synth::SynthSpec;

/// A fresh database with one table `t` seeded with `rows` integer rows.
fn seeded_db(rows: u64) -> (Database, TableId) {
    let mut db = Database::new();
    let table = db.create_table("t", &["v"]).unwrap();
    let seed = db.begin();
    for i in 0..rows {
        db.insert(seed, table, RowId(i), vec![Value::Int(0)])
            .unwrap();
    }
    db.commit(seed).unwrap();
    (db, table)
}

fn int_cell(db: &mut Database, txn: replipred::sidb::TxnId, table: TableId, row: u64) -> i64 {
    match db.read(txn, table, RowId(row)).unwrap().unwrap()[0] {
        Value::Int(v) => v,
        _ => unreachable!("seeded cells are ints"),
    }
}

fn arb_network() -> impl Strategy<Value = ClosedNetwork> {
    (
        0.001f64..0.2, // cpu demand
        0.001f64..0.2, // disk demand
        0.0f64..0.05,  // delay
        0.0f64..3.0,   // think time
    )
        .prop_map(|(cpu, disk, delay, z)| {
            ClosedNetwork::builder()
                .queueing("cpu", cpu)
                .queueing("disk", disk)
                .delay("lan", delay)
                .think_time(z)
                .build()
                .expect("generated demands are valid")
        })
}

/// An arbitrary point of the synthetic workload family, drawn from the
/// *valid* knob domain (the build-time rejections have their own
/// deterministic tests in `replipred-workload`).
fn arb_synth() -> impl Strategy<Value = SynthSpec> {
    (
        (
            0.0f64..1.0, // update fraction
            1usize..6,   // read classes
            1usize..4,   // update classes
            0.001f64..0.05,
            0.0f64..0.05, // read demand lo, width
            0.0f64..0.8,  // ws cost fraction
        ),
        (
            0usize..20,   // reads per txn
            1usize..6,    // shared writes per txn
            0usize..4,    // private writes
            0.0f64..1.0,  // hotspot skew
            1u64..512,    // hot rows
            0.05f64..3.0, // think time
        ),
        (
            1usize..100, // clients per replica
            1usize..4,   // read tables
            1u64..2000,  // rows per read table
            1u64..2000,  // updatable rows
            0.001f64..0.05,
            0.0f64..0.05, // write demand lo, width
        ),
    )
        .prop_map(
            |(
                (pw, read_classes, update_classes, rlo, rwidth, ws),
                (reads, writes, private, hot, hot_rows, think),
                (clients, tables, rows, update_rows, wlo, wwidth),
            )| {
                SynthSpec::new()
                    .update_fraction(pw)
                    .read_classes(read_classes)
                    .update_classes(update_classes)
                    .read_cpu(rlo, rlo + rwidth)
                    .read_disk(rlo / 2.0, rlo / 2.0 + rwidth)
                    .write_cpu(wlo, wlo + wwidth)
                    .write_disk(wlo / 2.0, wlo / 2.0 + wwidth)
                    .ws_fraction(ws)
                    .reads_per_txn(reads)
                    .writes_per_txn(writes)
                    .private_writes(private)
                    .hot_skew(hot)
                    .hot_rows(hot_rows)
                    .think_time(think)
                    .clients(clients)
                    .tables(tables)
                    .rows_per_table(rows)
                    .update_rows(update_rows)
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Exact MVA always sits inside the asymptotic bounds, and Little's
    /// law holds exactly at every population.
    #[test]
    fn mva_respects_bounds_and_littles_law(net in arb_network(), n in 1usize..400) {
        let sol = exact::solve(&net, n).unwrap();
        let b = bounds::asymptotic(&net, n);
        prop_assert!(sol.throughput <= b.throughput_upper + 1e-9);
        prop_assert!(sol.throughput >= b.throughput_lower - 1e-9);
        let reconstructed = sol.throughput * (sol.response_time + net.think_time());
        prop_assert!((reconstructed - n as f64).abs() < 1e-6);
    }

    /// Throughput is monotone in population; utilization never exceeds 1
    /// at queueing centers.
    #[test]
    fn mva_monotonicity_and_utilization(net in arb_network(), n in 2usize..300) {
        let a = exact::solve(&net, n - 1).unwrap();
        let b = exact::solve(&net, n).unwrap();
        prop_assert!(b.throughput >= a.throughput - 1e-9);
        for c in &b.centers {
            if c.name != "lan" {
                prop_assert!(c.utilization <= 1.0 + 1e-9, "{} u={}", c.name, c.utilization);
            }
        }
    }

    /// The Schweitzer approximation stays within a few percent of exact.
    #[test]
    fn schweitzer_close_to_exact(net in arb_network(), n in 1usize..300) {
        let e = exact::solve(&net, n).unwrap();
        let a = approx::solve_single(&net, n).unwrap();
        let rel = (a.throughput - e.throughput).abs() / e.throughput;
        prop_assert!(rel < 0.08, "rel {rel} at n={n}");
    }

    /// Abort algebra: A_N is a probability, grows with the window and the
    /// replica count, and reduces to A1 at CW = L(1), N = 1.
    #[test]
    fn abort_model_algebra(
        a1 in 0.0001f64..0.05,
        l1 in 0.005f64..0.5,
        cw_mult in 1.0f64..10.0,
        n in 1usize..32,
    ) {
        let m = AbortModel::new(a1, l1);
        let a_n = m.replicated(l1 * cw_mult, n);
        prop_assert!((0.0..1.0).contains(&a_n));
        prop_assert!(a_n >= a1 - 1e-12 || n == 1 && cw_mult == 1.0);
        prop_assert!(m.replicated(l1 * cw_mult, n + 1) >= a_n - 1e-12);
        prop_assert!(m.replicated(l1 * cw_mult * 2.0, n) >= a_n - 1e-12);
        let identity = m.replicated(l1, 1);
        prop_assert!((identity - a1).abs() < 1e-12);
    }

    /// The MM model yields finite, positive, monotone-in-N throughput for
    /// arbitrary valid profiles.
    #[test]
    fn mm_model_total_function(
        pr in 0.5f64..1.0,
        rc in 0.005f64..0.08,
        wc in 0.002f64..0.05,
        ws_frac in 0.05f64..0.9,
        a1 in 0.0f64..0.01,
    ) {
        let mut profile = WorkloadProfile {
            name: "prop".into(),
            pr,
            pw: 1.0 - pr,
            a1,
            cpu: replipred::model::ResourceDemands { read: rc, write: wc, writeset: wc * ws_frac },
            disk: replipred::model::ResourceDemands { read: rc / 2.0, write: wc / 2.0, writeset: wc * ws_frac / 2.0 },
            l1: wc * 2.0,
            update_ops: 3.0,
            db_update_size: 10_000.0,
            log_disk: 0.0,
        };
        profile.estimate_l1(40, 1.0).unwrap();
        let model = MultiMasterModel::new(profile, SystemConfig::lan_cluster(40));
        let mut last = 0.0;
        for n in [1usize, 2, 4, 8] {
            let p = model.predict(n).unwrap();
            prop_assert!(p.throughput_tps.is_finite() && p.throughput_tps > 0.0);
            prop_assert!(p.throughput_tps >= last * 0.999, "dip at N={n}");
            prop_assert!((0.0..1.0).contains(&p.abort_rate));
            last = p.throughput_tps;
        }
    }

    /// SI engine: first committer wins regardless of the interleaving of
    /// a batch of single-row updates.
    #[test]
    fn si_first_committer_wins(rows in proptest::collection::vec(0u64..20, 2..12)) {
        let (mut db, table) = seeded_db(20);
        // Begin all transactions concurrently (same snapshot), each
        // updating its assigned row; commit in order.
        let txns: Vec<_> = rows.iter().map(|_| db.begin()).collect();
        for (txn, &row) in txns.iter().zip(&rows) {
            db.update(*txn, table, RowId(row), vec![Value::Int(1)]).unwrap();
        }
        let mut winners: std::collections::BTreeMap<u64, usize> = Default::default();
        for (i, (txn, &row)) in txns.iter().zip(&rows).enumerate() {
            match db.commit(*txn) {
                Ok(_) => {
                    // Must be the first committer for this row.
                    prop_assert!(!winners.contains_key(&row), "row {row} won twice");
                    winners.insert(row, i);
                }
                Err(e) => {
                    prop_assert!(e.is_conflict());
                    // Some earlier transaction must have won this row.
                    prop_assert!(winners.contains_key(&row));
                }
            }
        }
    }

    /// SI engine: a reader's snapshot is immune to any sequence of
    /// concurrent committed updates, and a fresh transaction sees exactly
    /// the last committed value per row.
    #[test]
    fn si_snapshot_stability_across_concurrent_commits(
        updates in proptest::collection::vec((0u64..10, -50i64..50), 1..30),
    ) {
        let (mut db, table) = seeded_db(10);
        let reader = db.begin();
        let before: Vec<i64> = (0..10).map(|r| int_cell(&mut db, reader, table, r)).collect();
        let mut last: std::collections::BTreeMap<u64, i64> = Default::default();
        for &(row, val) in &updates {
            let w = db.begin();
            db.update(w, table, RowId(row), vec![Value::Int(val)]).unwrap();
            db.commit(w).unwrap();
            last.insert(row, val);
            // The long-running reader still sees its snapshot, unchanged.
            for r in 0..10 {
                prop_assert_eq!(int_cell(&mut db, reader, table, r), before[r as usize]);
            }
        }
        db.commit(reader).unwrap();
        // A fresh snapshot sees exactly the newest committed value per row.
        let fresh = db.begin();
        for r in 0..10u64 {
            let want = last.get(&r).copied().unwrap_or(0);
            prop_assert_eq!(int_cell(&mut db, fresh, table, r), want);
        }
    }

    /// Writeset application is deterministic: applying the same stream to
    /// two replicas yields identical versions.
    #[test]
    fn writeset_application_deterministic(updates in proptest::collection::vec((0u64..50, -100i64..100), 1..40)) {
        let (mut primary, table) = seeded_db(50);
        let (mut replica_a, _) = seeded_db(50);
        let (mut replica_b, _) = seeded_db(50);
        for &(row, val) in &updates {
            let t = primary.begin();
            primary.update(t, table, RowId(row), vec![Value::Int(val)]).unwrap();
            let info = primary.commit(t).unwrap();
            replica_a.apply_writeset(&info.writeset).unwrap();
            replica_b.apply_writeset(&info.writeset).unwrap();
        }
        let scan = |db: &mut Database| {
            let t = db.begin();
            db.scan(t, table).unwrap()
        };
        prop_assert_eq!(scan(&mut replica_a), scan(&mut replica_b));
        prop_assert_eq!(replica_a.version(), replica_b.version());
    }

    /// Re-applying a certified writeset is idempotent in visible state:
    /// a replica that (erroneously or during recovery replay) applies
    /// every writeset twice exposes exactly the same rows as one that
    /// applied the stream once.
    #[test]
    fn writeset_apply_idempotent_in_visible_state(
        updates in proptest::collection::vec((0u64..30, -100i64..100), 1..30),
    ) {
        let (mut primary, table) = seeded_db(30);
        let (mut once, _) = seeded_db(30);
        let (mut twice, _) = seeded_db(30);
        for &(row, val) in &updates {
            let t = primary.begin();
            primary.update(t, table, RowId(row), vec![Value::Int(val)]).unwrap();
            let info = primary.commit(t).unwrap();
            once.apply_writeset(&info.writeset).unwrap();
            twice.apply_writeset(&info.writeset).unwrap();
            twice.apply_writeset(&info.writeset).unwrap();
        }
        let scan = |db: &mut Database| {
            let t = db.begin();
            db.scan(t, table).unwrap()
        };
        prop_assert_eq!(scan(&mut once), scan(&mut twice));
    }

    /// Writesets over pairwise-disjoint rows commute: applying them in
    /// certification order or fully reversed yields the same visible
    /// state. (Overlapping writesets do NOT commute — which is exactly
    /// why the simulators retire them in strict certification order.)
    #[test]
    fn disjoint_writesets_commute(vals in proptest::collection::vec(-100i64..100, 2..20)) {
        let (mut primary, table) = seeded_db(20);
        // One writeset per distinct row: disjoint by construction.
        let mut writesets = Vec::new();
        for (row, &val) in vals.iter().enumerate() {
            let t = primary.begin();
            primary.update(t, table, RowId(row as u64), vec![Value::Int(val)]).unwrap();
            writesets.push(primary.commit(t).unwrap().writeset);
        }
        let (mut forward, _) = seeded_db(20);
        let (mut reversed, _) = seeded_db(20);
        for ws in &writesets {
            forward.apply_writeset(ws).unwrap();
        }
        for ws in writesets.iter().rev() {
            reversed.apply_writeset(ws).unwrap();
        }
        let scan = |db: &mut Database| {
            let t = db.begin();
            db.scan(t, table).unwrap()
        };
        prop_assert_eq!(scan(&mut forward), scan(&mut reversed));
    }

    /// Synthetic workload family: every point of the valid knob domain
    /// builds a spec whose class weights form a probability distribution,
    /// whose `pr() + pw()` identity holds and matches the update-fraction
    /// knob, and which installs (schema + seed + compile) against a fresh
    /// database.
    #[test]
    fn synth_specs_build_install_and_normalize(synth in arb_synth()) {
        let spec = match synth.build() {
            Ok(spec) => spec,
            Err(e) => return Err(TestCaseError::fail(format!("valid domain rejected: {e}"))),
        };
        let total: f64 = spec.classes.iter().map(|c| c.weight).sum();
        prop_assert!((total - 1.0).abs() < 1e-9, "weights sum to {total}");
        prop_assert!(spec.classes.iter().all(|c| c.weight > 0.0));
        prop_assert!((spec.pr() + spec.pw() - 1.0).abs() < 1e-9);
        if spec.pw() > 0.0 {
            prop_assert!(spec.mean_update_ops() >= 1.0 - 1e-9, "U = {}", spec.mean_update_ops());
        }
        let mut db = Database::new();
        let plan = spec.install(&mut db, 1.0);
        prop_assert!(plan.is_ok(), "install failed: {:?}", plan.err());
    }

    /// Synthetic family sampling: every template a generated spec yields
    /// targets only tables that exist and rows inside their seeded (or
    /// designated) spaces, and executes + commits cleanly when run
    /// serially.
    #[test]
    fn synth_samples_target_existing_tables_and_rows(synth in arb_synth(), seed in 0u64..1 << 32) {
        let spec = synth.build().expect("valid domain builds");
        let mut db = Database::new();
        let plan = spec.install(&mut db, 1.0).expect("installs");
        let mut rng = replipred::sim::Rng::seed_from_u64(seed);
        for _ in 0..40 {
            let template = plan.sample(&mut rng);
            for &(table, row) in &template.reads {
                let live = db.live_rows(table);
                prop_assert!(live.is_ok(), "read targets unknown table {table:?}");
                prop_assert!(
                    (row.raw() as usize) < live.unwrap(),
                    "read row {} beyond seeded table", row.raw()
                );
            }
            for &(table, row) in &template.writes {
                if table == plan.update_table() {
                    prop_assert!(row.raw() < spec.db_update_size);
                } else if Some(table) == plan.heap_table() {
                    prop_assert!(row.raw() < spec.heap.unwrap().rows);
                } else {
                    // Private rows materialize on first write; the table
                    // itself must exist.
                    prop_assert_eq!(Some(table), plan.private_table());
                    prop_assert!(db.live_rows(table).is_ok());
                }
            }
            // Serial execution can never conflict: each sampled template
            // must execute and commit against the installed schema.
            let txn = db.begin();
            let run = plan.execute(&mut db, txn, &template);
            prop_assert!(run.is_ok(), "execute failed: {:?}", run.err());
            prop_assert!(db.commit(txn).is_ok());
        }
    }
}
