//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors a minimal, API-compatible subset of serde: the
//! `Serialize` / `Deserialize` traits plus derive macros, backed by a
//! self-describing [`Value`] tree instead of serde's visitor machinery.
//! [`serde_json`](../serde_json) serializes that tree to JSON text using
//! the same external representation real serde_json produces for the
//! shapes this workspace uses (structs as objects, newtype structs as
//! their inner value, unit enum variants as strings, data-carrying
//! variants as single-key objects).
//!
//! Only what the workspace needs is implemented; the surface is kept
//! source-compatible so swapping the real serde back in is a
//! `Cargo.toml`-only change.

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialized tree — the intermediate representation
/// between typed data and a concrete format such as JSON.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer (anything that fits `i64`).
    Int(i64),
    /// Unsigned integer above `i64::MAX`.
    UInt(u64),
    /// Floating point number.
    Float(f64),
    /// UTF-8 string.
    Str(String),
    /// Ordered sequence.
    Seq(Vec<Value>),
    /// Ordered key/value map (insertion order preserved, like a JSON
    /// object literal).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Map entries, if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// Sequence elements, if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// String contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// First value for `key` in a map entry list (helper for derived code).
    pub fn map_get<'a>(entries: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
        entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Numeric contents widened to `f64`, if this is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(n) => Some(n as f64),
            Value::UInt(n) => Some(n as f64),
            Value::Float(n) => Some(n),
            _ => None,
        }
    }

    /// Numeric contents as `i128` (exact), if this is an integer.
    pub fn as_i128(&self) -> Option<i128> {
        match *self {
            Value::Int(n) => Some(n as i128),
            Value::UInt(n) => Some(n as i128),
            _ => None,
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone)]
pub struct DeError(String);

impl DeError {
    /// Builds an error from a message.
    pub fn custom(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// A type that can be converted into a [`Value`] tree.
pub trait Serialize {
    /// Serializes `self` into the intermediate tree.
    fn to_value(&self) -> Value;
}

/// A type that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Deserializes from the intermediate tree.
    fn from_value(value: &Value) -> Result<Self, DeError>;

    /// Fallback used by derived struct impls when a field is absent.
    /// `Option<T>` overrides this to yield `None`; everything else
    /// reports a missing-field error.
    fn if_missing() -> Option<Self> {
        None
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::custom(format!("expected bool, got {other:?}"))),
        }
    }
}

macro_rules! impl_int {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                let wide = *self as i128;
                if let Ok(n) = i64::try_from(wide) {
                    Value::Int(n)
                } else {
                    Value::UInt(*self as u64)
                }
            }
        }

        impl Deserialize for $ty {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let wide = value
                    .as_i128()
                    .ok_or_else(|| DeError::custom(format!(
                        concat!("expected ", stringify!($ty), ", got {:?}"), value
                    )))?;
                <$ty>::try_from(wide).map_err(|_| {
                    DeError::custom(format!(
                        concat!("integer {} out of range for ", stringify!($ty)), wide
                    ))
                })
            }
        }
    )*};
}

impl_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_float {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                Value::Float(f64::from(*self))
            }
        }

        impl Deserialize for $ty {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                value
                    .as_f64()
                    .map(|n| n as $ty)
                    .ok_or_else(|| DeError::custom(format!(
                        concat!("expected ", stringify!($ty), ", got {:?}"), value
                    )))
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_str()
            .map(str::to_owned)
            .ok_or_else(|| DeError::custom(format!("expected string, got {value:?}")))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let s = value
            .as_str()
            .ok_or_else(|| DeError::custom(format!("expected char, got {value:?}")))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::custom(format!("expected single char, got {s:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn if_missing() -> Option<Self> {
        Some(None)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_seq()
            .ok_or_else(|| DeError::custom(format!("expected sequence, got {value:?}")))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        T::from_value(value).map(Box::new)
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }

        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let seq = value
                    .as_seq()
                    .ok_or_else(|| DeError::custom(format!("expected tuple, got {value:?}")))?;
                let want = [$($idx),+].len();
                if seq.len() != want {
                    return Err(DeError::custom(format!(
                        "expected tuple of {want}, got {} elements", seq.len()
                    )));
                }
                Ok(($($name::from_value(&seq[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<K: ToString + std::str::FromStr + Ord, V: Serialize> Serialize
    for std::collections::BTreeMap<K, V>
{
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}

impl<K, V> Deserialize for std::collections::BTreeMap<K, V>
where
    K: std::str::FromStr + Ord,
    V: Deserialize,
{
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_map()
            .ok_or_else(|| DeError::custom(format!("expected map, got {value:?}")))?
            .iter()
            .map(|(k, v)| {
                let key = k
                    .parse()
                    .map_err(|_| DeError::custom(format!("bad map key {k:?}")))?;
                Ok((key, V::from_value(v)?))
            })
            .collect()
    }
}
