//! Offline stand-in for `serde_json`, backed by the vendored
//! [`serde::Value`] tree.
//!
//! Provides the entry points the workspace uses — [`to_string`],
//! [`to_string_pretty`], [`from_str`] — with the same external JSON
//! shape real serde_json produces for the types involved. Floats are
//! printed with Rust's shortest round-trip `Display`, so
//! serialize → parse → deserialize is exact for every finite `f64`.

use serde::{DeError, Deserialize, Serialize, Value};

/// Serialization / deserialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.to_string())
    }
}

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0)?;
    Ok(out)
}

/// Serializes `value` as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0)?;
    Ok(out)
}

/// Parses a JSON string into `T`.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            parser.pos
        )));
    }
    Ok(T::from_value(&value)?)
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

fn write_value(
    out: &mut String,
    value: &Value,
    indent: Option<usize>,
    depth: usize,
) -> Result<(), Error> {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Float(n) => {
            if !n.is_finite() {
                return Err(Error::new("JSON cannot represent NaN or infinity"));
            }
            out.push_str(&n.to_string());
        }
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_break(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1)?;
            }
            if !items.is_empty() {
                write_break(out, indent, depth);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_break(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1)?;
            }
            if !entries.is_empty() {
                write_break(out, indent, depth);
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_break(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at offset {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error::new(format!("bad array at offset {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error::new(format!("bad object at offset {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let code = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&code) {
                                // Surrogate pair.
                                if !self.eat_keyword("\\u") {
                                    return Err(Error::new("lone high surrogate"));
                                }
                                let low = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(Error::new("bad low surrogate"));
                                }
                                let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                                    .ok_or_else(|| Error::new("bad surrogate pair"))?
                            } else {
                                char::from_u32(code).ok_or_else(|| Error::new("bad \\u escape"))?
                            };
                            out.push(c);
                        }
                        other => {
                            return Err(Error::new(format!("unknown escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| Error::new("truncated \\u escape"))?;
        let text = std::str::from_utf8(slice).map_err(|_| Error::new("bad \\u escape"))?;
        let code = u32::from_str_radix(text, 16).map_err(|_| Error::new("bad \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("bad number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Int(n));
            }
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("bad number `{text}`")))
    }
}
