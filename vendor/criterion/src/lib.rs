//! Offline stand-in for the `criterion` crate.
//!
//! Implements the entry points the workspace's benches use —
//! [`Criterion::bench_function`], [`Bencher::iter`], and the
//! `criterion_group!` / `criterion_main!` macros — with a simple
//! calibrated timing loop instead of criterion's statistical machinery.
//! Each benchmark prints `name ... <time>/iter (n iterations)`.
//!
//! `cargo bench --no-run` compiles these harnesses; running them gives
//! rough but honest wall-clock numbers.

use std::time::{Duration, Instant};

/// Benchmark driver (stand-in for criterion's `Criterion`).
#[derive(Debug)]
pub struct Criterion {
    target: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            target: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        // Calibrate: grow the iteration count until the batch takes a
        // meaningful fraction of the time budget.
        loop {
            bencher.elapsed = Duration::ZERO;
            body(&mut bencher);
            if bencher.elapsed >= self.target / 10 || bencher.iters >= 1 << 24 {
                break;
            }
            let grow = if bencher.elapsed.is_zero() {
                16
            } else {
                (self.target.as_nanos() / bencher.elapsed.as_nanos().max(1)).clamp(2, 16) as u64
            };
            bencher.iters = bencher.iters.saturating_mul(grow);
        }
        // Measure: rerun the calibrated batch and keep the best of 3.
        let mut best = bencher.elapsed;
        for _ in 0..2 {
            bencher.elapsed = Duration::ZERO;
            body(&mut bencher);
            best = best.min(bencher.elapsed);
        }
        let per_iter = best.as_nanos() as f64 / bencher.iters as f64;
        println!(
            "{name:<40} {} ({} iterations)",
            format_ns(per_iter),
            bencher.iters
        );
        self
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:9.1} ns/iter")
    } else if ns < 1_000_000.0 {
        format!("{:9.2} µs/iter", ns / 1_000.0)
    } else {
        format!("{:9.3} ms/iter", ns / 1_000_000.0)
    }
}

/// Timing loop handle passed to the benchmark body.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, called once per iteration.
    // Measuring wall-clock time is this crate's entire purpose; the
    // workspace-wide Instant::now ban targets simulation code.
    #[allow(clippy::disallowed_methods)]
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Re-export for code that uses `criterion::black_box`.
pub use std::hint::black_box;

/// Declares a benchmark group function (simple `(name, targets...)` form).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
