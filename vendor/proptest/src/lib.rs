//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the [`Strategy`](strategy::Strategy) trait with
//! `prop_map`, range and tuple
//! strategies, [`collection::vec`], the `proptest!` macro with
//! `#![proptest_config(..)]`, and the `prop_assert!` family.
//!
//! Inputs are drawn from a deterministic SplitMix64 stream seeded from
//! the test name, so failures reproduce across runs. Shrinking is not
//! implemented: a failing case reports its case number and message.

pub mod test_runner {
    /// Deterministic RNG handed to strategies (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng(u64);

    impl TestRng {
        /// Seeds from a test name, stably across runs and platforms.
        pub fn deterministic(name: &str) -> Self {
            // FNV-1a over the name, mixed so short names diverge.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng(h | 1)
        }

        /// Next raw 64-bit draw.
        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        /// Uniform draw in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }

    /// A failed property case (carried out of the test body by the
    /// `prop_assert!` macros).
    #[derive(Debug, Clone)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Builds a failure with a message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }
}

/// Per-test configuration, set via `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;

    /// A generator of random values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Strategy yielding a fixed value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($ty:ty),*) => {$(
            impl Strategy for std::ops::Range<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128) - (self.start as i128);
                    let draw = rng.below(span as u64) as i128;
                    (self.start as i128 + draw) as $ty
                }
            }

            impl Strategy for std::ops::RangeInclusive<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128) - (start as i128) + 1;
                    let draw = rng.below(span as u64) as i128;
                    (start as i128 + draw) as $ty
                }
            }
        )*};
    }

    int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    macro_rules! float_range_strategy {
        ($($ty:ty),*) => {$(
            impl Strategy for std::ops::Range<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = f64::from(self.end) - f64::from(self.start);
                    (f64::from(self.start) + rng.next_f64() * span) as $ty
                }
            }
        )*};
    }

    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($name:ident : $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A: 0)
        (A: 0, B: 1)
        (A: 0, B: 1, C: 2)
        (A: 0, B: 1, C: 2, D: 3)
        (A: 0, B: 1, C: 2, D: 3, E: 4)
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Strategy for `Vec`s with element strategy `S` and a length drawn
    /// from `sizes`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        sizes: std::ops::Range<usize>,
    }

    /// `Vec` strategy: each case draws a length in `sizes`, then that
    /// many elements from `element`.
    pub fn vec<S: Strategy>(element: S, sizes: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, sizes }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.sizes.clone().generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::TestCaseError;
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Declares property tests (see the crate docs for supported syntax).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat in $strategy:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng =
                $crate::test_runner::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $(
                            let $pat =
                                $crate::strategy::Strategy::generate(&($strategy), &mut rng);
                        )+
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "property `{}` failed on case {}/{}: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        e
                    );
                }
            }
        }
    )*};
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        match (&$left, &$right) {
            (left, right) => {
                $crate::prop_assert!(
                    left == right,
                    "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    left,
                    right
                );
            }
        }
    };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {
        match (&$left, &$right) {
            (left, right) => {
                $crate::prop_assert!(
                    left != right,
                    "assertion failed: {} != {}\n  both: {:?}",
                    stringify!($left),
                    stringify!($right),
                    left
                );
            }
        }
    };
}
