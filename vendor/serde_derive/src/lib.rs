//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the vendored
//! serde stand-in.
//!
//! The build environment has no crates.io access, so this macro is
//! written against the bare `proc_macro` API — no `syn`, no `quote`.
//! It parses the subset of item shapes the workspace actually uses:
//!
//! - structs with named fields (optionally `#[serde(default)]` and/or
//!   `#[serde(skip_serializing_if = "path")]` per field)
//! - tuple structs (newtype structs serialize transparently)
//! - enums with unit, newtype/tuple, and struct variants
//!   (externally tagged, matching real serde's default representation)
//!
//! Generics are intentionally unsupported; deriving on a generic type is
//! a compile error pointing here.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Field {
    name: String,
    default: bool,
    /// Path from `#[serde(skip_serializing_if = "...")]`; when the
    /// predicate returns true for the field value the entry is omitted
    /// from the serialized map.
    skip_if: Option<String>,
}

/// Per-field serde attributes recognised by this vendored derive.
#[derive(Debug, Default)]
struct FieldAttrs {
    default: bool,
    skip_if: Option<String>,
}

#[derive(Debug)]
enum Fields {
    Unit,
    Named(Vec<Field>),
    Tuple(usize),
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: Fields,
}

#[derive(Debug)]
enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Cursor over a flat token-tree list.
struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Cursor {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    /// Consumes `#[...]` attribute groups, accumulating any recognised
    /// `#[serde(...)]` field attributes.
    fn skip_attrs(&mut self) -> FieldAttrs {
        let mut attrs = FieldAttrs::default();
        while matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            self.next();
            if let Some(TokenTree::Group(g)) = self.next() {
                collect_serde_attrs(g.stream(), &mut attrs);
            }
        }
        attrs
    }

    /// Consumes `pub`, `pub(crate)`, `pub(super)`, ... if present.
    fn skip_visibility(&mut self) {
        if matches!(self.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            self.next();
            if matches!(self.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                self.next();
            }
        }
    }

    fn expect_ident(&mut self, what: &str) -> String {
        match self.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde_derive: expected {what}, got {other:?}"),
        }
    }

    /// Consumes type tokens until a `,` at angle-bracket depth 0, eating
    /// the comma itself.
    fn skip_type(&mut self) {
        let mut depth = 0i32;
        while let Some(t) = self.peek() {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    self.next();
                    return;
                }
                _ => {}
            }
            self.next();
        }
    }
}

fn collect_serde_attrs(stream: TokenStream, attrs: &mut FieldAttrs) {
    let mut iter = stream.into_iter();
    match iter.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return,
    }
    let Some(TokenTree::Group(g)) = iter.next() else {
        return;
    };
    let tokens: Vec<TokenTree> = g.stream().into_iter().collect();
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Ident(id) if id.to_string() == "default" => attrs.default = true,
            TokenTree::Ident(id) if id.to_string() == "skip_serializing_if" => {
                // Expect `= "some::path"`.
                let eq = matches!(tokens.get(i + 1),
                    Some(TokenTree::Punct(p)) if p.as_char() == '=');
                let lit = tokens.get(i + 2).and_then(|t| match t {
                    TokenTree::Literal(l) => Some(l.to_string()),
                    _ => None,
                });
                match (eq, lit) {
                    (true, Some(l)) if l.len() >= 2 && l.starts_with('"') && l.ends_with('"') => {
                        attrs.skip_if = Some(l[1..l.len() - 1].to_owned());
                        i += 2;
                    }
                    _ => panic!(
                        "serde_derive: expected `skip_serializing_if = \"path\"` in serde attribute"
                    ),
                }
            }
            _ => {}
        }
        i += 1;
    }
}

/// Counts comma-separated slots at angle-depth 0 inside a tuple body.
fn count_tuple_slots(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut depth = 0i32;
    let mut slots = 1;
    let mut trailing_comma = false;
    for t in &tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                slots += 1;
                trailing_comma = true;
                continue;
            }
            _ => {}
        }
        trailing_comma = false;
    }
    if trailing_comma {
        slots -= 1;
    }
    slots
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut cursor = Cursor::new(stream);
    let mut fields = Vec::new();
    loop {
        let attrs = cursor.skip_attrs();
        if cursor.at_end() {
            break;
        }
        cursor.skip_visibility();
        let name = cursor.expect_ident("field name");
        match cursor.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive: expected `:` after field `{name}`, got {other:?}"),
        }
        cursor.skip_type();
        fields.push(Field {
            name,
            default: attrs.default,
            skip_if: attrs.skip_if,
        });
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut cursor = Cursor::new(stream);
    let mut variants = Vec::new();
    loop {
        cursor.skip_attrs();
        if cursor.at_end() {
            break;
        }
        let name = cursor.expect_ident("variant name");
        let fields = match cursor.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let slots = count_tuple_slots(g.stream());
                cursor.next();
                Fields::Tuple(slots)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner = g.stream();
                cursor.next();
                Fields::Named(parse_named_fields(inner))
            }
            _ => Fields::Unit,
        };
        // Discriminant (`= expr`) and the separating comma.
        while let Some(t) = cursor.peek() {
            if matches!(t, TokenTree::Punct(p) if p.as_char() == ',') {
                cursor.next();
                break;
            }
            cursor.next();
        }
        variants.push(Variant { name, fields });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let mut cursor = Cursor::new(input);
    cursor.skip_attrs();
    cursor.skip_visibility();
    let kind = cursor.expect_ident("`struct` or `enum`");
    let name = cursor.expect_ident("item name");
    if matches!(cursor.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive (vendored): generic types are not supported");
    }
    match kind.as_str() {
        "struct" => match cursor.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Struct {
                name,
                fields: Fields::Named(parse_named_fields(g.stream())),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Item::Struct {
                name,
                fields: Fields::Tuple(count_tuple_slots(g.stream())),
            },
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Item::Struct {
                name,
                fields: Fields::Unit,
            },
            other => panic!("serde_derive: unexpected struct body {other:?}"),
        },
        "enum" => match cursor.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Enum {
                name,
                variants: parse_variants(g.stream()),
            },
            other => panic!("serde_derive: unexpected enum body {other:?}"),
        },
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    }
}

// ---------------------------------------------------------------------
// Code generation (string-based; parsed back into a TokenStream).
// ---------------------------------------------------------------------

fn ser_named_fields(receiver: &str, fields: &[Field]) -> String {
    let mut out = String::from(
        "{ let mut __entries: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
         ::std::vec::Vec::new();",
    );
    for f in fields {
        let push = format!(
            "__entries.push((::std::string::String::from(\"{name}\"), \
             ::serde::Serialize::to_value(&{receiver}{name})));",
            name = f.name,
        );
        match &f.skip_if {
            Some(path) => out.push_str(&format!(
                "if !{path}(&{receiver}{name}) {{ {push} }}",
                name = f.name,
            )),
            None => out.push_str(&push),
        }
    }
    out.push_str("::serde::Value::Map(__entries) }");
    out
}

/// Builds the struct-literal body that reconstructs named fields from
/// `__entries` (a `&[(String, Value)]` binding in scope).
fn de_named_fields(type_name: &str, fields: &[Field]) -> String {
    let mut out = String::new();
    for f in fields {
        let missing = if f.default {
            "::std::default::Default::default()".to_owned()
        } else {
            format!(
                "match ::serde::Deserialize::if_missing() {{ \
                   ::std::option::Option::Some(v) => v, \
                   ::std::option::Option::None => return ::std::result::Result::Err(\
                     ::serde::DeError::custom(\"missing field `{field}` in `{ty}`\")), \
                 }}",
                field = f.name,
                ty = type_name,
            )
        };
        out.push_str(&format!(
            "{name}: match ::serde::Value::map_get(__entries, \"{name}\") {{ \
               ::std::option::Option::Some(v) => ::serde::Deserialize::from_value(v)?, \
               ::std::option::Option::None => {missing}, \
             }},",
            name = f.name,
        ));
    }
    out
}

fn derive_serialize_impl(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => "::serde::Value::Null".to_owned(),
                Fields::Named(fs) => ser_named_fields("self.", fs),
                Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_owned(),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                        .collect();
                    format!("::serde::Value::Seq(::std::vec![{}])", items.join(","))
                }
            };
            format!(
                "impl ::serde::Serialize for {name} {{ \
                   fn to_value(&self) -> ::serde::Value {{ {body} }} \
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::Str(::std::string::String::from(\"{vn}\")),"
                    )),
                    Fields::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vn}(__f0) => ::serde::Value::Map(::std::vec![(\
                           ::std::string::String::from(\"{vn}\"), \
                           ::serde::Serialize::to_value(__f0))]),"
                    )),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({binds}) => ::serde::Value::Map(::std::vec![(\
                               ::std::string::String::from(\"{vn}\"), \
                               ::serde::Value::Seq(::std::vec![{items}]))]),",
                            binds = binds.join(","),
                            items = items.join(","),
                        ));
                    }
                    Fields::Named(fs) => {
                        let binds: Vec<String> = fs.iter().map(|f| f.name.clone()).collect();
                        let inner = ser_named_fields("*", fs);
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {binds} }} => ::serde::Value::Map(::std::vec![(\
                               ::std::string::String::from(\"{vn}\"), {inner})]),",
                            binds = binds.join(","),
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{ \
                   fn to_value(&self) -> ::serde::Value {{ \
                     match self {{ {arms} }} \
                   }} \
                 }}"
            )
        }
    }
}

fn derive_deserialize_impl(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => format!("::std::result::Result::Ok({name})"),
                Fields::Named(fs) => format!(
                    "{{ let __entries = __value.as_map().ok_or_else(|| \
                       ::serde::DeError::custom(\"expected map for `{name}`\"))?; \
                       ::std::result::Result::Ok({name} {{ {fields} }}) }}",
                    fields = de_named_fields(name, fs),
                ),
                Fields::Tuple(1) => format!(
                    "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__value)?))"
                ),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::from_value(&__seq[{i}])?"))
                        .collect();
                    format!(
                        "{{ let __seq = __value.as_seq().ok_or_else(|| \
                           ::serde::DeError::custom(\"expected sequence for `{name}`\"))?; \
                           if __seq.len() != {n} {{ \
                             return ::std::result::Result::Err(::serde::DeError::custom(\
                               \"wrong tuple arity for `{name}`\")); \
                           }} \
                           ::std::result::Result::Ok({name}({items})) }}",
                        items = items.join(","),
                    )
                }
            };
            format!(
                "impl ::serde::Deserialize for {name} {{ \
                   fn from_value(__value: &::serde::Value) -> \
                     ::std::result::Result<Self, ::serde::DeError> {{ {body} }} \
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => unit_arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),"
                    )),
                    Fields::Tuple(1) => data_arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(\
                           ::serde::Deserialize::from_value(__inner)?)),"
                    )),
                    Fields::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&__seq[{i}])?"))
                            .collect();
                        data_arms.push_str(&format!(
                            "\"{vn}\" => {{ let __seq = __inner.as_seq().ok_or_else(|| \
                               ::serde::DeError::custom(\"expected sequence for `{name}::{vn}`\"))?; \
                               if __seq.len() != {n} {{ \
                                 return ::std::result::Result::Err(::serde::DeError::custom(\
                                   \"wrong arity for `{name}::{vn}`\")); \
                               }} \
                               ::std::result::Result::Ok({name}::{vn}({items})) }},",
                            items = items.join(","),
                        ));
                    }
                    Fields::Named(fs) => data_arms.push_str(&format!(
                        "\"{vn}\" => {{ let __entries = __inner.as_map().ok_or_else(|| \
                           ::serde::DeError::custom(\"expected map for `{name}::{vn}`\"))?; \
                           ::std::result::Result::Ok({name}::{vn} {{ {fields} }}) }},",
                        fields = de_named_fields(&format!("{name}::{vn}"), fs),
                    )),
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{ \
                   fn from_value(__value: &::serde::Value) -> \
                     ::std::result::Result<Self, ::serde::DeError> {{ \
                     match __value {{ \
                       ::serde::Value::Str(__s) => match __s.as_str() {{ \
                         {unit_arms} \
                         __other => ::std::result::Result::Err(::serde::DeError::custom(\
                           format!(\"unknown `{name}` variant `{{__other}}`\"))), \
                       }}, \
                       ::serde::Value::Map(__entries) if __entries.len() == 1 => {{ \
                         let (__tag, __inner) = &__entries[0]; \
                         match __tag.as_str() {{ \
                           {data_arms} \
                           __other => ::std::result::Result::Err(::serde::DeError::custom(\
                             format!(\"unknown `{name}` variant `{{__other}}`\"))), \
                         }} \
                       }}, \
                       __other => ::std::result::Result::Err(::serde::DeError::custom(\
                         format!(\"cannot deserialize `{name}` from {{__other:?}}\"))), \
                     }} \
                   }} \
                 }}"
            )
        }
    }
}

/// Derives the vendored `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    derive_serialize_impl(&item)
        .parse()
        .expect("serde_derive: generated Serialize impl parses")
}

/// Derives the vendored `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    derive_deserialize_impl(&item)
        .parse()
        .expect("serde_derive: generated Deserialize impl parses")
}
