//! The full paper pipeline, end to end:
//!
//! 1. run a workload on a *standalone* (simulated) database;
//! 2. profile it — statement-log counting plus Utilization-Law replays
//!    (paper Section 4);
//! 3. feed the profile to the analytical models;
//! 4. validate the prediction against the mechanistic cluster simulation
//!    (our stand-in for the paper's 16-machine prototype).
//!
//! ```text
//! cargo run --release --example profile_and_predict
//! ```

use replipred::model::{MultiMasterModel, SystemConfig};
use replipred::profiler::Profiler;
use replipred::repl::{MultiMasterSim, SimConfig};
use replipred::workload::tpcw;

fn main() {
    let spec = tpcw::mix(tpcw::Mix::Shopping);

    // Step 1+2: profile the standalone database.
    println!("profiling the standalone database (TPC-W shopping)...");
    let outcome = Profiler::new(spec.clone()).seed(2009).profile();
    let p = &outcome.profile;
    println!(
        "  Pr = {:.1}%  Pw = {:.1}%  A1 = {:.4}%",
        p.pr * 1e2,
        p.pw * 1e2,
        p.a1 * 1e2
    );
    println!(
        "  rc = {:.2}/{:.2} ms  wc = {:.2}/{:.2} ms  ws = {:.2}/{:.2} ms (cpu/disk)",
        p.cpu.read * 1e3,
        p.disk.read * 1e3,
        p.cpu.write * 1e3,
        p.disk.write * 1e3,
        p.cpu.writeset * 1e3,
        p.disk.writeset * 1e3
    );
    println!("  L(1) = {:.1} ms   U = {:.1}", p.l1 * 1e3, p.update_ops);

    // Step 3: predict.
    let config = SystemConfig::lan_cluster(spec.clients_per_replica);
    let model = MultiMasterModel::new(outcome.profile.clone(), config);

    // Step 4: validate against the simulated cluster.
    println!("\nvalidating against the simulated multi-master cluster:");
    println!(
        "{:>3} {:>12} {:>12} {:>8}",
        "N", "predicted", "simulated", "error"
    );
    for n in [1usize, 2, 4, 8] {
        let predicted = model.predict(n).expect("profiled inputs are valid");
        let simulated = MultiMasterSim::new(spec.clone(), SimConfig::quick(n, 2009)).run();
        let err =
            (predicted.throughput_tps - simulated.throughput_tps).abs() / simulated.throughput_tps;
        println!(
            "{n:>3} {:>8.1} tps {:>8.1} tps {:>7.1}%",
            predicted.throughput_tps,
            simulated.throughput_tps,
            err * 1e2
        );
    }
    println!("\nThe paper reports model accuracy within 15%; points above that");
    println!("band are in the saturated region where the model gives an upper bound.");
}
