//! Capacity planning — the paper's motivating application (Section 1):
//! "Performance models are employed for capacity planning and for dynamic
//! service provisioning as in data centers that host several e-commerce
//! applications."
//!
//! Given a diurnal load pattern (morning lull, evening peak), pick the
//! cheapest replicated deployment per period, entirely from standalone
//! profiling.
//!
//! ```text
//! cargo run --release --example capacity_planning
//! ```

use replipred::model::planner::{plan, Slo};
use replipred::model::{SystemConfig, WorkloadProfile};

fn main() {
    let profile = WorkloadProfile::tpcw_shopping();
    let config = SystemConfig::lan_cluster(40);

    // A day in the life of the bookstore: demand in committed tps.
    let day = [
        ("02:00 night", 40.0),
        ("08:00 morning", 120.0),
        ("12:00 lunch", 220.0),
        ("17:00 after-work", 300.0),
        ("20:00 peak", 380.0),
    ];
    println!("dynamic provisioning plan, TPC-W shopping, SLO: resp <= 400 ms\n");
    println!(
        "{:<16} {:>9} | {:<14} {:>8} | {:>10} {:>12}",
        "period", "load", "design", "replicas", "pred tps", "pred resp"
    );
    for (period, load) in day {
        let slo = Slo {
            min_throughput_tps: load,
            max_response_time: Some(0.4),
            max_abort_rate: Some(0.05),
        };
        let plans = plan(&profile, &config, &slo, 16).expect("published profile is valid");
        match plans.first() {
            Some(p) => println!(
                "{:<16} {:>5.0} tps | {:<14} {:>8} | {:>10.1} {:>9.1} ms",
                period,
                load,
                format!("{:?}", p.design),
                p.replicas,
                p.prediction.throughput_tps,
                p.prediction.response_time * 1e3
            ),
            None => println!("{period:<16} {load:>5.0} tps | infeasible within 16 replicas"),
        }
    }
    println!("\nEach row is computed in microseconds from the same standalone profile —");
    println!("no cluster was harmed (or even provisioned) to produce this plan.");
}
