//! Quickstart: predict replicated scalability from published standalone
//! parameters.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! This is the paper's headline workflow with zero measurement effort:
//! take the standalone profile (here the published TPC-W shopping-mix
//! parameters, Tables 2-3), and print the predicted throughput, response
//! time and abort rate of both replicated designs for 1..16 replicas —
//! before deploying anything.

use replipred::model::{MultiMasterModel, SingleMasterModel, SystemConfig, WorkloadProfile};

fn main() {
    let profile = WorkloadProfile::tpcw_shopping();
    let config = SystemConfig::lan_cluster(40);
    let mm = MultiMasterModel::new(profile.clone(), config.clone());
    let sm = SingleMasterModel::new(profile, config);

    println!("TPC-W shopping mix (80% reads), 40 clients/replica, 1 s think time");
    println!(
        "{:>3} | {:>10} {:>10} {:>9} | {:>10} {:>10} {:>9}",
        "N", "MM tps", "MM resp", "MM abort", "SM tps", "SM resp", "SM abort"
    );
    for n in 1..=16 {
        let m = mm.predict(n).expect("published profile is valid");
        let s = sm.predict(n).expect("published profile is valid");
        println!(
            "{n:>3} | {:>10.1} {:>7.1} ms {:>8.3}% | {:>10.1} {:>7.1} ms {:>8.3}%",
            m.throughput_tps,
            m.response_time * 1e3,
            m.abort_rate * 100.0,
            s.throughput_tps,
            s.response_time * 1e3,
            s.abort_rate * 100.0,
        );
    }
    let mm16 = mm.predict(16).expect("valid");
    let mm1 = mm.predict(1).expect("valid");
    println!(
        "\nMulti-master speedup at 16 replicas: {:.1}x (bottleneck: {})",
        mm16.speedup_over(&mm1),
        mm16.bottleneck
    );
}
