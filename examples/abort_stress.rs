//! The Figure-14 story as an executable: how conflict-prone workloads
//! limit multi-master scalability.
//!
//! A heap-table stressor dials the standalone abort probability up, and
//! the example shows the predicted and simulated replicated abort rate
//! `A_N` racing upward with the replica count — the "dangers of
//! replication" [Gray 1996] made quantitative.
//!
//! ```text
//! cargo run --release --example abort_stress
//! ```

use replipred::model::{MultiMasterModel, SystemConfig};
use replipred::profiler::Profiler;
use replipred::repl::{MultiMasterSim, SimConfig, StandaloneSim};
use replipred::workload::{heap, tpcw};

fn main() {
    let base = tpcw::mix(tpcw::Mix::Shopping);
    for heap_rows in [512u64, 128, 48] {
        let spec = heap::with_heap_stress(&base, heap_rows);
        // Measure the standalone abort probability with the stressor on.
        let standalone = StandaloneSim::new(spec.clone(), SimConfig::quick(1, 7)).run();
        let profile = Profiler::new(spec.clone())
            .seed(7)
            .profile()
            .profile
            .with_a1(standalone.abort_rate.max(1e-6));
        let model =
            MultiMasterModel::new(profile, SystemConfig::lan_cluster(spec.clients_per_replica));
        println!(
            "\nheap = {heap_rows} rows -> standalone A1 = {:.2}%",
            standalone.abort_rate * 1e2
        );
        println!("{:>3} {:>14} {:>14}", "N", "simulated A_N", "predicted A_N");
        for n in [2usize, 4, 8] {
            let sim = MultiMasterSim::new(spec.clone(), SimConfig::quick(n, 7)).run();
            let predicted = model.predict_abort_rate(n).expect("profiled inputs valid");
            println!(
                "{n:>3} {:>13.2}% {:>13.2}%",
                sim.abort_rate * 1e2,
                predicted * 1e2
            );
        }
    }
    println!("\nSmaller heap -> more write-write conflicts -> faster A_N growth;");
    println!("the model tracks the trend while slightly under-estimating, as in the paper.");
}
