//! Multi-master vs single-master across every published workload —
//! the design-selection question the paper's models exist to answer.
//!
//! For each workload (TPC-W browsing/shopping/ordering, RUBiS
//! browsing/bidding), print both designs' predicted scalability and the
//! crossover where the single-master saturates at its master.
//!
//! ```text
//! cargo run --release --example mm_vs_sm
//! ```

use replipred::model::{MultiMasterModel, SingleMasterModel, SystemConfig, WorkloadProfile};

fn clients_for(profile: &WorkloadProfile) -> usize {
    match profile.name.as_str() {
        "tpcw-browsing" => 30,
        "tpcw-shopping" => 40,
        _ => 50,
    }
}

fn main() {
    for profile in WorkloadProfile::all_paper_profiles() {
        let config = SystemConfig::lan_cluster(clients_for(&profile));
        let mm = MultiMasterModel::new(profile.clone(), config.clone());
        let sm = SingleMasterModel::new(profile.clone(), config);
        let mm_curve = mm.predict_curve(16).expect("published profile is valid");
        let sm_curve = sm.predict_curve(16).expect("published profile is valid");
        println!("\n== {} (Pw = {:.0}%) ==", profile.name, profile.pw * 100.0);
        println!(
            "{:>3} {:>12} {:>12} {:>10}",
            "N", "MM tps", "SM tps", "MM/SM"
        );
        for n in [1usize, 2, 4, 8, 12, 16] {
            let m = mm_curve.at(n).expect("curve covers 1..=16");
            let s = sm_curve.at(n).expect("curve covers 1..=16");
            println!(
                "{n:>3} {:>12.1} {:>12.1} {:>9.2}x",
                m.throughput_tps,
                s.throughput_tps,
                m.throughput_tps / s.throughput_tps
            );
        }
        let mm_speedup = mm_curve.total_speedup().expect("non-empty");
        let sm_speedup = sm_curve.total_speedup().expect("non-empty");
        println!(
            "speedup at 16 replicas: MM {mm_speedup:.1}x, SM {sm_speedup:.1}x; SM bottleneck: {}",
            sm_curve.at(16).expect("covered").bottleneck
        );
    }
    println!("\nRead-dominated mixes scale on either design; update-heavy mixes");
    println!("saturate the single master — the paper's Figures 6-13 in one table.");
}
